"""The cluster front door: a thin HTTP router that owns no engines.

:class:`PCORRouter` binds the public address, spawns a
:class:`~repro.cluster.fleet.WorkerFleet` (one release worker per shard),
and proxies the existing ``/v1/*`` JSON API unchanged:

* **Per-dataset routes** (``/v1/datasets/{name}/release``,
  ``/v1/budget?dataset=NAME``) forward to the shard owning the dataset —
  the same consistent hash the workers compute — and pass the worker's
  response bytes through *verbatim*.  No re-serialization means releases
  through the router are bit-identical to single-process serving, and
  typed error payloads (402 budget exhaustion, 400 validation, ...)
  survive untouched.
* **Aggregate routes** (``/v1/datasets``, ``/v1/metrics``,
  ``/v1/budget`` without a dataset) fan out to every live shard and merge
  the per-dataset maps; shards with no live worker are reported in
  ``unavailable_shards`` rather than silently omitted.
  ``/v1/metrics/prometheus`` does the same for the text exposition,
  stamping every worker sample with a ``shard`` label and appending the
  router's own registry (proxy counters, per-shard latency histograms,
  the ``pcor_unavailable_shards`` gauge).

Every proxied request carries a trace: the router adopts the client's
``X-PCOR-Trace`` header or mints one, forwards it to the worker, and —
for sampled release responses — splices its own ``router.proxy`` span
into the ``trace`` block of the response JSON, so one trace id covers
the proxy hop, queue wait, admission, and engine execution.
* **Control routes** (``/control/v1/register``, ``/control/v1/heartbeat``)
  are the workers' loopback-only channel into the fleet.

Proxy retry policy mirrors :class:`~repro.server.client.PCORClient`:
a GET may be retried once on a fresh connection (reads are idempotent),
but a release POST is never blindly resent — the worker may have charged
the budget (fsync'd) before the response was lost, and a resend would
double-spend.  A shard with no live worker yields a typed 503
(:class:`~repro.exceptions.ShardUnavailableError`) with ``Retry-After``
set to the heartbeat interval — by then the supervisor has usually
respawned the worker and replayed its ledgers.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import time
from typing import Any, Dict, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.exceptions import ServerError, ShardUnavailableError
from repro.obs.export import merged_exposition
from repro.obs.events import (
    EventBufferHandler,
    install_event_buffer,
    uninstall_event_buffer,
)
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.profiler import (
    ProfileSessions,
    ProfilerDisarmed,
    merge_folded,
    profiler_supported,
    render_folded,
    validate_profile_args,
)
from repro.obs.trace import TRACE_HEADER, process_rss_bytes, trace_for_request
from repro.server.config import ObservabilityConfig, ServerConfig
from repro.server.http import (
    HEALTH_PATH,
    TENANT_HEADER,
    DrainState,
    JsonRequestHandler,
    ThreadingJsonServer,
    _BadRequest,
    _Draining,
    query_number,
)
from repro.cluster.fleet import WorkerFleet
from repro.cluster.manager import WorkerManager, make_worker_manager

logger = logging.getLogger("repro.cluster")

__all__ = ["PCORRouter"]

#: Loopback peers allowed to speak the worker control protocol.
_LOOPBACK = ("127.0.0.1", "::1")


class _RouterHandler(JsonRequestHandler):
    """One request against a :class:`PCORRouter` (``self.server.app``)."""

    def _route_get(self, raw: bytes) -> None:
        app: "PCORRouter" = self._app()
        url = urlparse(self.path)
        if url.path == HEALTH_PATH:
            self._respond(200, app.health())
        elif url.path == "/v1/datasets":
            self._respond(200, app.list_datasets())
        elif url.path == "/v1/metrics":
            self._respond(200, app.metrics())
        elif url.path == "/v1/metrics/prometheus":
            self._respond_raw(
                200,
                app.prometheus_metrics().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        elif url.path == "/v1/debug/profile":
            query = parse_qs(url.query)
            self._respond(
                200,
                app.debug_profile(
                    seconds=query_number(query, "seconds"),
                    hz=query_number(query, "hz"),
                ),
            )
        elif url.path == "/v1/debug/events":
            query = parse_qs(url.query)
            self._respond(200, app.debug_events(n=query_number(query, "n")))
        elif url.path == "/v1/budget":
            dataset = parse_qs(url.query).get("dataset", [None])[0]
            if dataset is None:
                self._respond(200, app.budget(self._tenant()))
            else:
                # Single-dataset budget: pass through to the owning shard
                # verbatim (including 404s for unknown names).
                self._passthrough(app, dataset, "GET", self.path)
        else:
            raise ServerError(f"no such route: GET {url.path}")

    def _route_post(self, raw: bytes) -> None:
        app: "PCORRouter" = self._app()
        url = urlparse(self.path)
        if url.path.startswith("/control/"):
            self._control(app, url.path, raw)
            return
        parts = url.path.strip("/").split("/")
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "datasets"]
            and parts[3] in ("release", "append")
        ):
            # Forward the request bytes verbatim: what the worker parses
            # is exactly what the client sent, so a release through the
            # router is bit-identical to one served directly.  Appends ride
            # the same per-dataset consistent-hash route, so the shard that
            # serves a dataset is the one that grows it.
            self._passthrough(app, parts[2], "POST", self.path, body=raw)
        else:
            raise ServerError(f"no such route: POST {url.path}")

    def _passthrough(
        self,
        app: "PCORRouter",
        dataset: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> None:
        tenant = (self.headers.get(TENANT_HEADER) or "").strip()
        trace = app.trace_for(self.headers)
        status, data, retry_after = app.proxy(
            dataset, method, path, body=body, tenant=tenant, trace=trace
        )
        if (
            trace is not None
            and trace.sampled
            and method == "POST"
            and status == 200
        ):
            data = app.inject_trace(data, trace)
        headers = {"Retry-After": retry_after} if retry_after else None
        self._respond_raw(status, data, headers=headers)

    def _control(self, app: "PCORRouter", path: str, raw: bytes) -> None:
        if self.client_address[0] not in _LOOPBACK:
            # The control channel is an implementation detail of the
            # router↔worker loopback pair, not part of the public API.
            raise ServerError(f"no such route: POST {path}")
        body = self._parse_json(raw)
        if path == "/control/v1/register":
            self._respond(200, app.fleet.register(body))
        elif path == "/control/v1/heartbeat":
            self._respond(200, app.fleet.heartbeat(body))
        else:
            raise ServerError(f"no such route: POST {path}")


class PCORRouter:
    """Sharded serving: a proxy front end plus a supervised worker fleet.

    Parameters
    ----------
    config:
        The full cluster :class:`ServerConfig` (``cluster.workers >= 1``).
        Workers derive their own shard sub-configs from the same document.
    host / port:
        Public bind overrides (``port=0`` picks an ephemeral port).
    manager:
        Worker supervisor override; defaults to what
        ``[cluster] manager`` names (subprocesses, or in-process threads).
    config_path:
        Where ``config`` already lives on disk, if anywhere — lets the
        process manager point workers at the original file instead of a
        temp copy.
    """

    def __init__(
        self,
        config: Union[ServerConfig, Mapping],
        host: Optional[str] = None,
        port: Optional[int] = None,
        manager: Optional[WorkerManager] = None,
        config_path: Optional[str] = None,
    ) -> None:
        if not isinstance(config, ServerConfig):
            config = ServerConfig.from_dict(config)
        cluster = config.cluster
        if cluster is None or cluster.workers < 1:
            raise ServerError(
                "PCORRouter needs [cluster] workers >= 1; "
                "use PCORServer for single-process serving"
            )
        self.config = config
        self.cluster = cluster
        bind = (
            host if host is not None else config.host,
            port if port is not None else config.port,
        )
        try:
            self._httpd = ThreadingJsonServer(bind, _RouterHandler)
        except OSError as exc:
            raise ServerError(f"cannot bind {bind[0]}:{bind[1]}: {exc}") from None
        self._httpd.app = self  # type: ignore[attr-defined]
        self.drain = DrainState()
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self.obs = config.observability or ObservabilityConfig()
        # Debug introspection mirrors the worker tier: the router samples
        # its own stacks under the "router" prefix while fanning the
        # profile out to every live shard, and keeps its own event ring
        # (heartbeats, respawns, drains happen router-side only).
        self._profiles = ProfileSessions()
        self._events_handler: Optional[EventBufferHandler] = (
            install_event_buffer(self.obs.events_buffer)
            if self.obs.events_buffer > 0
            else None
        )
        # Router-side observability: registry-backed counters replace the
        # old hand-rolled dicts; the JSON ``/v1/metrics`` shapes are
        # derived views over these same children.
        self.metrics_registry = MetricsRegistry()
        self._responses = self.metrics_registry.counter(
            "pcor_router_http_responses_total",
            "Router HTTP responses by status class.",
            labelnames=("status",),
        )
        self._proxy_requests = self.metrics_registry.counter(
            "pcor_proxy_requests_total",
            "Requests proxied to each shard.",
            labelnames=("shard",),
        )
        self._proxy_errors = self.metrics_registry.counter(
            "pcor_proxy_errors_total",
            "Proxy transport failures (no live worker, dropped connection).",
            labelnames=("shard",),
        )
        self._proxy_seconds = self.metrics_registry.counter(
            "pcor_proxy_seconds_total",
            "Wall seconds spent proxying to each shard.",
            labelnames=("shard",),
        )
        self._proxy_latency = self.metrics_registry.histogram(
            "pcor_router_proxy_latency_seconds",
            "Router-to-worker proxy latency per shard.",
            labelnames=("shard",),
        )
        self._unavailable = self.metrics_registry.gauge(
            "pcor_unavailable_shards",
            "Shards with no live worker at the last aggregation.",
        )
        self._unavailable.set(0.0)
        # Workers dial back over loopback even if the public bind is
        # wildcard — the fleet stays a single-host unit for now.
        self.control_url = f"http://127.0.0.1:{self.port}"
        if manager is None:
            manager = make_worker_manager(config, config_path=config_path)
        self.fleet = WorkerFleet(config, manager, router_url=self.control_url)
        # Keep-alive proxy connections, one per worker per handler thread
        # (handler threads die with their connection, taking these along).
        self._local = threading.local()

    # ------------------------------------------------------------ lifecycle

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self.drain.draining

    def start(self, wait_ready: bool = True, timeout: float = 30.0) -> "PCORRouter":
        """Open the front door, spawn the fleet, optionally block until
        every shard has registered."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="pcor-router",
                daemon=True,
            )
            self._thread.start()
            self.fleet.start()
        if wait_ready:
            self.fleet.wait_ready(timeout=timeout)
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path).

        The listener must accept before the fleet spawns (workers register
        through it), so the serve loop runs in the background thread
        either way and this just parks the caller.
        """
        self.start(wait_ready=False)
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            raise

    def shutdown(self) -> None:
        """Drain in-flight proxies, stop the fleet, close the listener."""
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
        # Before the drain barrier: an in-flight fleet profile would park
        # its handler in the drain window for the full sampling period.
        self._profiles.disarm()
        self.drain.drain()
        self.fleet.stop()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._events_handler is not None:
            uninstall_event_buffer(self._events_handler)
            self._events_handler = None

    def __enter__(self) -> "PCORRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _count(self, status: int) -> None:
        self._responses.inc(labels=(f"{status // 100}xx",))

    def trace_for(self, headers: Mapping[str, str]):
        """Adopt the client's ``X-PCOR-Trace`` or mint one (None when
        observability is disabled)."""
        return trace_for_request(headers.get(TRACE_HEADER), self.obs)

    # ---------------------------------------------------------------- proxy

    def proxy(
        self,
        dataset: str,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        tenant: str = "",
        trace=None,
    ) -> Tuple[int, bytes, Optional[str]]:
        """Forward one request to the shard owning ``dataset``.

        Returns ``(status, response_bytes, retry_after_header)`` for
        verbatim passthrough.  GETs may retry once on a fresh connection;
        POSTs never (see module docstring — double-spend).  A ``trace``
        is forwarded as the ``X-PCOR-Trace`` header so the worker joins
        the same trace, and the proxy hop is recorded as a
        ``router.proxy`` span on success.
        """
        shard = self.fleet.shard_for(dataset)
        worker_url = self.fleet.url_for_shard(shard)
        if worker_url is None:
            self._note_proxy(shard, 0.0, error=True)
            raise self._shard_unavailable(shard)
        headers = {}
        if tenant:
            headers[TENANT_HEADER] = tenant
        if trace is not None and trace.sampled:
            headers[TRACE_HEADER] = trace.header_value()
        started = time.monotonic()
        attempts = 2 if method == "GET" else 1
        for attempt in range(attempts):
            conn = self._connection(worker_url, fresh=attempt > 0)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                retry_after = response.getheader("Retry-After")
                ended = time.monotonic()
                self._note_proxy(shard, (ended - started) * 1000.0)
                if trace is not None:
                    trace.add_span(
                        "router.proxy",
                        started,
                        ended,
                        shard=shard,
                        method=method,
                        status=response.status,
                    )
                return response.status, data, retry_after
            except (OSError, http.client.HTTPException):
                self._drop_connection(worker_url)
                if attempt + 1 >= attempts:
                    self._note_proxy(
                        shard,
                        (time.monotonic() - started) * 1000.0,
                        error=True,
                    )
                    raise self._shard_unavailable(shard) from None
        raise AssertionError("unreachable")  # pragma: no cover

    def inject_trace(self, data: bytes, trace) -> bytes:
        """Splice the router's own spans into the worker's ``trace`` block.

        The release response already carries the worker-side span timeline
        for the same trace id; this appends the proxy hop so the payload
        the client sees is the full end-to-end timeline.  Only the
        ``trace`` block is touched — the JSON round-trip preserves the
        ``result`` values exactly (both sides serialize with
        :func:`json.dumps`).  Anything unexpected returns the bytes
        untouched.
        """
        try:
            payload = json.loads(data.decode("utf-8"))
            block = payload.get("trace")
            if (
                not isinstance(block, dict)
                or block.get("trace_id") != trace.trace_id
                or not isinstance(block.get("spans"), list)
            ):
                return data
            block["spans"].extend(trace.spans())
            block["spans"].sort(
                key=lambda s: (s.get("start_ms", 0.0), s.get("name", ""))
            )
            return json.dumps(payload).encode("utf-8")
        except (ValueError, AttributeError, TypeError):
            return data

    def _shard_unavailable(self, shard: int) -> ShardUnavailableError:
        exc = ShardUnavailableError(
            f"shard {shard} has no live worker; the supervisor "
            f"{'is respawning it' if self.cluster.respawn else 'will not respawn it'} "
            "- retry shortly"
        )
        # Surfaced as the Retry-After header: one heartbeat interval is
        # roughly when a respawned worker will have registered.
        exc.retry_after = self.cluster.heartbeat_interval_s
        return exc

    def _connection(self, url: str, fresh: bool = False):
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        if fresh or url not in pool:
            self._drop_connection(url)
            parsed = urlparse(url)
            pool[url] = http.client.HTTPConnection(
                parsed.hostname, parsed.port, timeout=60.0
            )
        return pool[url]

    def _drop_connection(self, url: str) -> None:
        pool = getattr(self._local, "pool", None)
        if pool is not None and url in pool:
            try:
                pool.pop(url).close()
            except OSError:  # pragma: no cover - best-effort close
                pass

    def _note_proxy(self, shard: int, ms: float, error: bool = False) -> None:
        labels = (str(shard),)
        self._proxy_requests.inc(labels=labels)
        self._proxy_seconds.inc(ms / 1000.0, labels=labels)
        self._proxy_latency.observe(ms / 1000.0, labels=labels)
        if error:
            self._proxy_errors.inc(labels=labels)

    def _shard_json(
        self,
        shard: int,
        url: str,
        path: str,
        tenant: str = "",
        timeout: float = 30.0,
    ):
        """One aggregation fan-out call (returns None on a dead shard)."""
        headers = {TENANT_HEADER: tenant} if tenant else {}
        parsed = urlparse(url)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=timeout
        )
        try:
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                return None
            return json.loads(data.decode("utf-8"))
        except (OSError, http.client.HTTPException, ValueError):
            return None
        finally:
            conn.close()

    # ------------------------------------------------------------ endpoints

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.drain.draining else "ok",
            "version": __version__,
            "role": "router",
            "workers": self.cluster.workers,
            "datasets": sorted(self.config.datasets),
            "shards": self.fleet.snapshot(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "rss_bytes": process_rss_bytes(),
            "observability": {
                "enabled": self.obs.enabled,
                "sample_rate": self.obs.sample_rate,
                "slow_request_ms": self.obs.slow_request_ms,
                "log_format": self.obs.log_format,
            },
        }

    def _aggregate(
        self, path: str, tenant: str = ""
    ) -> Tuple[Dict[str, Any], list]:
        """Merge the per-dataset map under ``"datasets"`` from every live
        shard; dead shards are listed, not silently dropped."""
        live = self.fleet.live_urls()
        merged: Dict[str, Any] = {}
        failed = sorted(set(range(self.cluster.workers)) - set(live))
        for shard, url in sorted(live.items()):
            body = self._shard_json(shard, url, path, tenant=tenant)
            if body is None:
                failed.append(shard)
                continue
            merged.update(body.get("datasets", {}))
        return merged, sorted(failed)

    def list_datasets(self) -> Dict[str, Any]:
        merged, failed = self._aggregate("/v1/datasets")
        out: Dict[str, Any] = {"datasets": merged}
        if failed:
            out["unavailable_shards"] = failed
        return out

    def budget(self, tenant: str) -> Dict[str, Any]:
        merged, failed = self._aggregate("/v1/budget", tenant=tenant)
        out: Dict[str, Any] = {"tenant": tenant, "datasets": merged}
        if failed:
            out["unavailable_shards"] = failed
        return out

    def metrics(self) -> Dict[str, Any]:
        """Fleet-wide monotonic counters plus the router's own shard view
        (request counts, proxy latency, heartbeat age, respawns).

        The ``router`` section and ``unavailable_shards`` are always
        present (an empty list when every shard is live) so dashboards
        never have to treat a missing key as "healthy".
        """
        merged, failed = self._aggregate("/v1/metrics")
        self._unavailable.set(float(len(failed)))
        responses = {key[0]: int(value) for key, value in self._responses.items()}
        shards = []
        for row in self.fleet.snapshot():
            labels = (str(row["shard"]),)
            requests = int(self._proxy_requests.value(labels))
            total_ms = self._proxy_seconds.value(labels) * 1000.0
            shards.append(
                {
                    "shard": row["shard"],
                    "status": row["status"],
                    "requests": requests,
                    "proxy_errors": int(self._proxy_errors.value(labels)),
                    "proxy_ms_mean": (
                        round(total_ms / requests, 3) if requests else None
                    ),
                    "heartbeat_age_s": row["heartbeat_age_s"],
                    "respawns": row["respawns"],
                }
            )
        return {
            "server": {"responses_by_status": responses},
            "router": {"workers": self.cluster.workers, "shards": shards},
            "datasets": merged,
            "unavailable_shards": failed,
        }

    def prometheus_metrics(self) -> str:
        """The fleet-wide text exposition: every live shard's own
        ``/v1/metrics/prometheus`` body with a ``shard`` label stamped on
        each sample, plus the router's registry (proxy counters, latency
        histograms, ``pcor_unavailable_shards``)."""
        live = self.fleet.live_urls()
        failed = set(range(self.cluster.workers)) - set(live)
        shard_texts = []
        for shard, url in sorted(live.items()):
            text = self._shard_text(shard, url)
            if text is None:
                failed.add(shard)
                continue
            shard_texts.append((shard, text))
        self._unavailable.set(float(len(failed)))
        return merged_exposition(
            shard_texts, extra_families=self.metrics_registry.collect()
        )

    def debug_profile(
        self, seconds: Optional[float] = None, hz: Optional[float] = None
    ) -> Dict[str, Any]:
        """One merged flamegraph for the whole fleet.

        Fans ``/v1/debug/profile`` out to every live shard on parallel
        threads while the router samples *itself* on the handler thread,
        then merges the folded stacks under ``router;`` / ``shard<N>;``
        roots.  Shards that die mid-scrape land in ``unavailable_shards``
        — a partial profile renders rather than a 500.  Router shutdown
        disarms the local session, so a fleet profile never stalls the
        drain barrier.
        """
        try:
            seconds, hz = validate_profile_args(seconds, hz)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        live = self.fleet.live_urls()
        failed = set(range(self.cluster.workers)) - set(live)
        path = f"/v1/debug/profile?seconds={seconds:g}&hz={hz:g}"
        results: Dict[int, Optional[Dict[str, Any]]] = {}

        def fetch(shard: int, url: str) -> None:
            # The worker blocks for the full sampling window before it
            # responds, so the fan-out timeout must exceed it.
            results[shard] = self._shard_json(
                shard, url, path, timeout=seconds + 30.0
            )

        threads = [
            threading.Thread(
                target=fetch,
                args=(shard, url),
                name=f"pcor-profile-shard{shard}",
                daemon=True,
            )
            for shard, url in sorted(live.items())
        ]
        for thread in threads:
            thread.start()
        try:
            own = self._profiles.run(seconds=seconds, hz=hz)
        except ProfilerDisarmed as exc:
            raise _Draining(str(exc)) from None
        for thread in threads:
            thread.join(timeout=seconds + 60.0)

        sources: Dict[str, Dict[str, Any]] = {}
        profiles = [("router", own.get("folded") or {})]
        for shard in sorted(live):
            body = results.get(shard)
            if body is None:
                failed.add(shard)
                continue
            label = f"shard{shard}"
            profiles.append((label, body.get("folded") or {}))
            sources[label] = {
                key: body.get(key)
                for key in ("samples", "threads", "duration_s", "disarmed")
            }
        sources["router"] = {
            key: own.get(key)
            for key in ("samples", "threads", "duration_s", "disarmed")
        }
        folded = merge_folded(profiles)
        return {
            "supported": profiler_supported(),
            "seconds": seconds,
            "hz": hz,
            "samples": sum(s.get("samples") or 0 for s in sources.values()),
            "disarmed": any(s.get("disarmed") for s in sources.values()),
            "sources": sources,
            "folded": folded,
            "folded_text": render_folded(folded),
            "unavailable_shards": sorted(failed),
        }

    def debug_events(self, n: Optional[float] = None) -> Dict[str, Any]:
        """The fleet's recent structured events, merged and time-sorted.

        Each event is stamped with its ``source`` (``router`` or
        ``shard<N>``); per-source ring counters land under ``sources`` so
        an operator can tell when a window is incomplete.  Dead shards go
        to ``unavailable_shards``.
        """
        if n is not None and n < 0:
            raise _BadRequest(f"n must be >= 0, got {n:g}")
        limit = int(n) if n is not None else None
        live = self.fleet.live_urls()
        failed = set(range(self.cluster.workers)) - set(live)
        sources: Dict[str, Dict[str, Any]] = {}
        events: list = []
        if self._events_handler is not None:
            snap = self._events_handler.buffer.snapshot(limit)
            for event in snap.pop("events"):
                event["source"] = "router"
                events.append(event)
            sources["router"] = snap
        path = "/v1/debug/events" + (
            f"?n={limit}" if limit is not None else ""
        )
        for shard, url in sorted(live.items()):
            body = self._shard_json(shard, url, path)
            if body is None:
                failed.add(shard)
                continue
            label = f"shard{shard}"
            for event in body.get("events", []):
                event["source"] = label
                events.append(event)
            sources[label] = {
                key: body.get(key)
                for key in ("capacity", "buffered", "total", "dropped")
            }
        events.sort(key=lambda e: (e.get("ts") or 0.0, str(e.get("source"))))
        if limit is not None and len(events) > limit:
            events = events[-limit:]
        return {
            "events": events,
            "sources": sources,
            "unavailable_shards": sorted(failed),
        }

    def _shard_text(self, shard: int, url: str) -> Optional[str]:
        """One shard's Prometheus exposition (None on a dead shard)."""
        parsed = urlparse(url)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=30.0
        )
        try:
            conn.request("GET", "/v1/metrics/prometheus")
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                return None
            return data.decode("utf-8")
        except (OSError, http.client.HTTPException):
            return None
        finally:
            conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PCORRouter(url={self.url!r}, workers={self.cluster.workers})"
        )

"""Consistent dataset → shard assignment.

The cluster's correctness rests on one invariant: **every dataset's budget
ledger has exactly one writer**.  The router and every worker must
therefore agree — with no coordination beyond the shared config — on which
shard owns which dataset.  A keyed hash gives that agreement:

* assignment depends only on the dataset *name* and the shard count —
  never on registry order, so two processes iterating the config in
  different orders still partition identically;
* the ring form (each shard projected to many virtual points, a dataset
  owned by the next point clockwise from its own hash) keeps assignments
  mostly stable when the worker count changes: growing from N to N+1
  shards moves only the ~1/(N+1) of datasets nearest the new shard's
  points, instead of reshuffling almost everything the way ``hash % N``
  would.

Hashes are BLAKE2b, *not* Python's builtin ``hash()`` — the builtin is
salted per process (PYTHONHASHSEED), which would hand each worker its own
private idea of the partition.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List

from repro.exceptions import ServerError

#: Virtual points per shard on the ring.  More points = smoother balance
#: (the standard deviation of shard load shrinks like 1/sqrt(replicas))
#: at a one-off O(shards * replicas * log(...)) build cost.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Dataset name → shard index over ``shards`` ring positions."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        shards = int(shards)
        if shards < 1:
            raise ServerError(f"hash ring needs >= 1 shard, got {shards}")
        if int(replicas) < 1:
            raise ServerError(f"hash ring needs >= 1 replica, got {replicas}")
        self.shards = shards
        points = sorted(
            (stable_hash(f"shard={shard}#vnode={vnode}"), shard)
            for shard in range(shards)
            for vnode in range(int(replicas))
        )
        self._hashes: List[int] = [h for h, _ in points]
        self._owners: List[int] = [s for _, s in points]

    def shard_for(self, name: str) -> int:
        """The shard owning dataset ``name`` (deterministic, order-free)."""
        point = stable_hash(f"dataset={name}")
        index = bisect_right(self._hashes, point) % len(self._hashes)
        return self._owners[index]


def shard_assignments(
    names: Iterable[str], shards: int, replicas: int = DEFAULT_REPLICAS
) -> Dict[str, int]:
    """``{dataset_name: shard}`` for every name, independent of order."""
    ring = ConsistentHashRing(shards, replicas=replicas)
    return {str(name): ring.shard_for(str(name)) for name in names}

"""Fleet state: which worker serves which shard, and is it alive.

The :class:`WorkerFleet` is the router's supervisor.  It spawns one
worker per shard through a :class:`~repro.cluster.manager.WorkerManager`,
accepts their registrations and heartbeats (the router's control channel
calls straight into :meth:`register` / :meth:`heartbeat`), watches for
silence, and respawns the dead.

Generations keep crash recovery honest: each shard's expected worker id
is ``shard{i}-gen{g}``, bumped on every respawn.  A report from any other
id is answered ``ok: False`` — so a hung-but-not-dead worker that wakes
up after its replacement registered learns it was superseded and exits,
instead of becoming a second writer on the shard's ledgers.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import ServerError
from repro.obs.logs import log_event
from repro.server.config import ServerConfig
from repro.cluster.hashing import ConsistentHashRing
from repro.cluster.manager import WorkerHandle, WorkerManager, WorkerSpec

logger = logging.getLogger("repro.cluster")


class ShardState:
    """One shard's slot in the fleet (mutate only under the fleet lock)."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.generation = 0
        self.handle: Optional[WorkerHandle] = None
        self.url: Optional[str] = None
        self.pid: Optional[int] = None
        self.datasets: List[str] = []
        self.status = "starting"  # starting | ok | draining | dead
        self.last_beat: Optional[float] = None
        self.respawns = 0

    @property
    def expected_id(self) -> str:
        return f"shard{self.shard}-gen{self.generation}"

    @property
    def ready(self) -> bool:
        return self.url is not None and self.status in ("ok", "draining")

    def heartbeat_age(self, now: float) -> Optional[float]:
        return None if self.last_beat is None else now - self.last_beat


class WorkerFleet:
    """Spawn, track, and respawn one worker per shard."""

    def __init__(
        self,
        config: ServerConfig,
        manager: WorkerManager,
        router_url: str,
    ) -> None:
        cluster = config.cluster
        if cluster is None or cluster.workers < 1:
            raise ServerError("a worker fleet needs [cluster] workers >= 1")
        self.config = config
        self.cluster = cluster
        self.manager = manager
        self.router_url = router_url
        self.ring = ConsistentHashRing(cluster.workers)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._shards = [ShardState(i) for i in range(cluster.workers)]
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "WorkerFleet":
        for state in self._shards:
            self._spawn_locked_free(state)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="pcor-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn_locked_free(self, state: ShardState) -> None:
        """Spawn ``state``'s current generation (no lock needed: callers
        either run before the monitor exists or already hold the lock).

        State resets *before* the spawn: an in-process worker can register
        concurrently with ``manager.spawn`` returning, and a reset
        afterwards would wipe that registration.
        """
        state.status = "starting"
        state.url = None
        state.pid = None
        state.last_beat = None
        spec = WorkerSpec(
            shard=state.shard,
            generation=state.generation,
            router_url=self.router_url,
        )
        state.handle = self.manager.spawn(spec)
        if state.pid is None:  # registration may have landed already
            state.pid = state.handle.pid
        log_event(
            logger,
            "spawn",
            shard=state.shard,
            worker_id=spec.worker_id,
            generation=state.generation,
            pid=state.pid,
        )

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every shard has registered (raises on timeout)."""
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                missing = [s.shard for s in self._shards if not s.ready]
                if not missing:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise ServerError(
                        f"cluster startup timed out after {timeout:.0f}s; "
                        f"shard(s) {missing} never registered"
                    )
                self._changed.wait(timeout=remaining)

    def stop(self) -> None:
        self._stop.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=self.cluster.heartbeat_interval_s + 5.0)
        with self._lock:
            handles = [s.handle for s in self._shards if s.handle is not None]
        for handle in handles:
            handle.stop()
        self.manager.close()

    # ------------------------------------------------------ control channel

    def register(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """A worker announcing its URL and datasets.  Only the shard's
        current generation is accepted; anything else is superseded."""
        worker_id = str(payload.get("worker_id", ""))
        state = self._state_for(payload)
        with self._changed:
            if state is None or worker_id != state.expected_id:
                return {
                    "ok": False,
                    "reason": f"worker {worker_id!r} is not the current "
                    "generation for its shard (superseded)",
                }
            datasets = [str(d) for d in payload.get("datasets", [])]
            claimed = self._claimed_elsewhere(state.shard, datasets)
            if claimed:
                # Single-writer invariant: a dataset served by two shards
                # would mean two ledger writers.  Refuse loudly.
                return {
                    "ok": False,
                    "reason": "dataset(s) already owned by another shard: "
                    f"{sorted(claimed)}",
                }
            state.url = str(payload["url"])
            state.pid = int(payload.get("pid", state.pid or 0)) or state.pid
            state.datasets = datasets
            state.status = str(payload.get("status", "ok"))
            state.last_beat = time.monotonic()
            self._changed.notify_all()
            log_event(
                logger,
                "register",
                shard=state.shard,
                worker_id=worker_id,
                url=state.url,
                pid=state.pid,
                datasets=datasets,
            )
            return {"ok": True}

    def heartbeat(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        worker_id = str(payload.get("worker_id", ""))
        state = self._state_for(payload)
        with self._changed:
            if (
                state is None
                or worker_id != state.expected_id
                or state.url is None
            ):
                return {
                    "ok": False,
                    "reason": f"worker {worker_id!r} is not registered as the "
                    "current generation for its shard (superseded)",
                }
            state.last_beat = time.monotonic()
            state.status = str(payload.get("status", "ok"))
            self._changed.notify_all()
            log_event(
                logger,
                "heartbeat",
                level=logging.DEBUG,
                shard=state.shard,
                worker_id=worker_id,
                status=state.status,
            )
            return {"ok": True}

    def _state_for(self, payload: Mapping[str, Any]) -> Optional[ShardState]:
        try:
            shard = int(payload.get("shard", -1))
        except (TypeError, ValueError):
            return None
        if not (0 <= shard < len(self._shards)):
            return None
        return self._shards[shard]

    def _claimed_elsewhere(self, shard: int, datasets: List[str]) -> set:
        mine = set(datasets)
        taken = set()
        for other in self._shards:
            if other.shard != shard and other.url is not None:
                taken |= mine & set(other.datasets)
        return taken

    # ------------------------------------------------------------- liveness

    def _monitor_loop(self) -> None:
        interval = self.cluster.heartbeat_interval_s
        timeout = self.cluster.heartbeat_timeout_s
        while not self._stop.wait(interval):
            now = time.monotonic()
            with self._changed:
                for state in self._shards:
                    if self._is_dead(state, now, timeout):
                        self._declare_dead(state)
                        if self.cluster.respawn:
                            state.generation += 1
                            state.respawns += 1
                            log_event(
                                logger,
                                "respawn",
                                level=logging.WARNING,
                                shard=state.shard,
                                worker_id=state.expected_id,
                                generation=state.generation,
                                respawns=state.respawns,
                            )
                            self._spawn_locked_free(state)
                self._changed.notify_all()

    @staticmethod
    def _is_dead(state: ShardState, now: float, timeout: float) -> bool:
        if state.handle is None or state.status == "dead":
            return False
        if not state.handle.alive():
            return True
        age = state.heartbeat_age(now)
        # Never registered: give the worker the full timeout from spawn
        # (last_beat is None until the first register lands).
        return age is not None and age > timeout

    def _declare_dead(self, state: ShardState) -> None:
        log_event(
            logger,
            "worker_dead",
            level=logging.WARNING,
            shard=state.shard,
            worker_id=state.expected_id,
            pid=state.pid,
            respawn=self.cluster.respawn,
        )
        if state.handle is not None:
            try:
                state.handle.kill()  # reap; no-op if already gone
            except Exception:  # pragma: no cover - best-effort reaping
                logger.exception("fleet: reaping shard %d failed", state.shard)
        state.handle = None
        state.url = None
        state.status = "dead"

    # ------------------------------------------------------------- querying

    def shard_for(self, dataset: str) -> int:
        return self.ring.shard_for(dataset)

    def url_for_shard(self, shard: int) -> Optional[str]:
        with self._lock:
            state = self._shards[shard]
            return state.url if state.ready else None

    def live_urls(self) -> Dict[int, str]:
        """``{shard: url}`` for every shard with a registered live worker."""
        with self._lock:
            return {s.shard: s.url for s in self._shards if s.ready}

    def snapshot(self) -> List[Dict[str, Any]]:
        """Per-shard observability row (healthz / metrics)."""
        now = time.monotonic()
        with self._lock:
            rows = []
            for s in self._shards:
                age = s.heartbeat_age(now)
                rows.append(
                    {
                        "shard": s.shard,
                        "worker_id": s.expected_id,
                        "status": s.status,
                        "url": s.url,
                        "pid": s.pid,
                        "datasets": list(s.datasets),
                        "heartbeat_age_s": None if age is None else round(age, 3),
                        "respawns": s.respawns,
                    }
                )
            return rows

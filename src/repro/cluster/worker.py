"""One release worker: a shard of the dataset registry behind the router.

A :class:`ReleaseWorker` is a full :class:`~repro.server.app.PCORServer`
hosting only the datasets its shard owns (consistent hashing over the
shared config — see :mod:`repro.cluster.hashing`), bound to an ephemeral
loopback port, plus a heartbeat thread reporting to the router's control
channel.

Ordering is what makes a crash safe: the worker's registry replays its
datasets' durable ledgers during ``PCORServer`` *construction* — before
the listener thread starts, and before the worker registers its URL with
the router — so by the time the router proxies the first request to a
(re)spawned worker, an exhausted tenant is already exhausted again.  The
ledger files themselves are partitioned exactly like the datasets (one
JSONL WAL per dataset), so a shard's ledgers have a single writer no
matter how many workers share ``ledger_dir``.

A worker is deliberately disposable: it exits when its heartbeats are
rejected (a newer generation superseded it) and when the router stops
answering (the supervisor died — orphans must not keep ports and ledgers
open).  The supervisor treats worker death as routine and respawns.
"""

from __future__ import annotations

import http.client
import json
import logging
import os
import signal
import threading
from typing import Any, Dict, List, Optional
from urllib.parse import urlparse

from repro import __version__
from repro.exceptions import ServerError
from repro.server.app import PCORServer
from repro.server.config import ServerConfig
from repro.cluster.hashing import shard_assignments

logger = logging.getLogger("repro.cluster")

#: Consecutive failed heartbeats after which a worker assumes the router
#: is gone and shuts itself down.
MAX_HEARTBEAT_FAILURES = 5


def shard_config(config: ServerConfig, shard: int) -> ServerConfig:
    """The sub-config a shard's worker serves: its datasets, its port.

    The worker binds loopback on an ephemeral port (the router proxies;
    workers are never exposed directly) and drops the ``cluster`` section
    — a worker must not recursively spawn a fleet.  Ledger policy is
    inherited unchanged: per-dataset WAL files make the partition of
    datasets also a partition of ledgers.
    """
    cluster = config.cluster
    if cluster is None or cluster.workers < 1:
        raise ServerError(
            "shard_config needs a [cluster] section with workers >= 1"
        )
    if not (0 <= int(shard) < cluster.workers):
        raise ServerError(
            f"shard must be in [0, {cluster.workers}), got {shard}"
        )
    owners = shard_assignments(config.datasets, cluster.workers)
    mine = {
        name: cfg
        for name, cfg in config.datasets.items()
        if owners[name] == int(shard)
    }
    return ServerConfig(
        datasets=mine,
        host="127.0.0.1",
        port=0,
        ledger=config.ledger,
        ledger_dir=config.ledger_dir,
        fsync=config.fsync,
        # Observability settings (sampling, slow-request threshold, log
        # format) apply fleet-wide: a trace minted at the router must
        # find the same sampling policy on every shard.
        observability=config.observability,
    )


class ReleaseWorker:
    """One shard's serving process (or thread, under the thread manager).

    Parameters
    ----------
    config:
        The *full* cluster :class:`ServerConfig`; the worker derives its
        own shard's sub-config from it (both sides hash identically).
    shard:
        This worker's shard index in ``[0, cluster.workers)``.
    router_url:
        The router's loopback control URL (registration + heartbeats).
    worker_id:
        Identity assigned by the supervisor, unique per (shard,
        generation); a superseded id's heartbeats are rejected, telling a
        stale worker to exit.
    """

    def __init__(
        self,
        config: ServerConfig,
        shard: int,
        router_url: str,
        worker_id: str,
    ) -> None:
        self.shard = int(shard)
        self.worker_id = str(worker_id)
        self.router_url = str(router_url).rstrip("/")
        parsed = urlparse(self.router_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServerError(
                f"router_url must look like http://host:port, got {router_url!r}"
            )
        self._router_host = parsed.hostname
        self._router_port = parsed.port or 80
        cluster = config.cluster
        if cluster is None:
            raise ServerError("a release worker needs a [cluster] section")
        self.heartbeat_interval_s = cluster.heartbeat_interval_s
        # Ledger replay happens right here, inside the registry build —
        # before start() ever opens the listener to traffic.
        self.server = PCORServer(shard_config(config, self.shard))
        self.datasets: List[str] = self.server.registry.names()
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def alive(self) -> bool:
        thread = self._heartbeat_thread
        return thread is not None and thread.is_alive()

    def start(self) -> "ReleaseWorker":
        """Serve the shard and start heartbeating (non-blocking)."""
        self.server.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"pcor-worker-{self.worker_id}",
            daemon=True,
        )
        self._heartbeat_thread.start()
        return self

    def stop(self) -> None:
        """Graceful exit: drain in-flight requests, close ledgers."""
        self._stop.set()
        thread = self._heartbeat_thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=self.heartbeat_interval_s + 5.0)
        self.server.shutdown()

    def kill(self) -> None:
        """Abrupt exit — no drain, no goodbye heartbeat (crash simulation
        for the in-process manager; a subprocess worker dies by signal)."""
        self._stop.set()
        self.server.abort()

    def join(self, timeout: Optional[float] = None) -> None:
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout=timeout)

    # ----------------------------------------------------------- heartbeats

    def _heartbeat_loop(self) -> None:
        """Register, then beat until stopped, rejected, or orphaned."""
        registered = False
        failures = 0
        while not self._stop.is_set():
            try:
                if not registered:
                    reply = self._control_post(
                        "/control/v1/register", self._registration()
                    )
                    if not reply.get("ok", False):
                        logger.warning(
                            "worker %s registration rejected: %s",
                            self.worker_id,
                            reply.get("reason", "no reason given"),
                        )
                        break
                    registered = True
                else:
                    reply = self._control_post(
                        "/control/v1/heartbeat", self._beat()
                    )
                    if not reply.get("ok", False):
                        logger.info(
                            "worker %s superseded (%s); exiting",
                            self.worker_id,
                            reply.get("reason", "no reason given"),
                        )
                        break
                failures = 0
            except ServerError as exc:
                failures += 1
                registered = False  # a restarted router needs a re-register
                logger.debug(
                    "worker %s heartbeat failure %d/%d: %s",
                    self.worker_id,
                    failures,
                    MAX_HEARTBEAT_FAILURES,
                    exc,
                )
                if failures >= MAX_HEARTBEAT_FAILURES:
                    logger.warning(
                        "worker %s lost the router (%d consecutive heartbeat "
                        "failures); shutting down",
                        self.worker_id,
                        failures,
                    )
                    break
            self._stop.wait(self.heartbeat_interval_s)
        # Reached on stop(), rejection, or router loss.  stop() shuts the
        # server down itself; the other two exits must do it here so an
        # orphaned worker releases its port and ledger handles.
        if not self._stop.is_set():
            self._stop.set()
            self.server.shutdown()

    def _registration(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "shard": self.shard,
            "url": self.url,
            "pid": os.getpid(),
            "datasets": self.datasets,
            "version": __version__,
            "status": self._status(),
        }

    def _beat(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "shard": self.shard,
            "status": self._status(),
        }

    def _status(self) -> str:
        # The /healthz "draining" satellite feeds straight into the fleet:
        # a draining worker is deliberately finishing, not dead.
        return "draining" if self.server.draining else "ok"

    def _control_post(self, path: str, body: Dict[str, Any]) -> Dict[str, Any]:
        """One control-channel POST (fresh loopback connection per beat —
        ~1/s per worker, not worth pooling)."""
        data = json.dumps(body).encode("utf-8")
        timeout = max(1.0, self.heartbeat_interval_s)
        conn = http.client.HTTPConnection(
            self._router_host, self._router_port, timeout=timeout
        )
        try:
            conn.request(
                "POST",
                path,
                body=data,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServerError(
                    f"control channel {path} answered {response.status}"
                )
            return json.loads(raw.decode("utf-8"))
        except (OSError, http.client.HTTPException, ValueError) as exc:
            raise ServerError(f"control channel unreachable: {exc}") from None
        finally:
            conn.close()

    # ------------------------------------------------------------ CLI entry

    def run(self) -> int:
        """Blocking entry point for ``pcor worker`` (SIGTERM-graceful)."""
        done = threading.Event()

        def _stop_signal(signum, frame):  # pragma: no cover - signal plumbing
            done.set()

        signal.signal(signal.SIGTERM, _stop_signal)
        signal.signal(signal.SIGINT, _stop_signal)
        self.start()
        logger.info(
            "worker %s serving shard %d (%s) on %s",
            self.worker_id,
            self.shard,
            ", ".join(self.datasets) or "no datasets",
            self.url,
        )
        # Wake on SIGTERM or on the heartbeat thread exiting on its own
        # (superseded / orphaned).
        while not done.is_set() and self.alive:
            done.wait(0.2)
        self.stop()
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReleaseWorker(id={self.worker_id!r}, shard={self.shard}, "
            f"datasets={self.datasets})"
        )

"""Worker supervision: where release workers run and how they restart.

The router never spawns processes itself — it asks a
:class:`WorkerManager` for a worker and gets back a
:class:`WorkerHandle` it can health-check and terminate.  Two managers
ship today:

* :class:`LocalProcessManager` — real subprocesses (``pcor worker``),
  the production shape: a crash loses only that shard's in-flight
  requests, and the OS reclaims everything.
* :class:`InProcessWorkerManager` — workers as threads inside the
  current process.  No spawn latency and fully deterministic, which is
  what tests want; "crash" is simulated by aborting the worker's server
  without drain.

The protocol is deliberately tiny (spawn / handle.alive / stop / kill)
so a remote manager — SSH, containers, a job scheduler — can slot in
later without the fleet or router changing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, TYPE_CHECKING

from repro.exceptions import ServerError
from repro.server.config import MANAGER_KINDS, ServerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.worker import ReleaseWorker


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a manager needs to start one worker."""

    shard: int
    generation: int
    router_url: str

    @property
    def worker_id(self) -> str:
        """Stable identity per (shard, generation) — ``shard0-gen1`` —
        so the fleet can tell a respawn from a stale survivor."""
        return f"shard{self.shard}-gen{self.generation}"


class WorkerHandle:
    """A running worker as seen by its supervisor."""

    spec: WorkerSpec
    pid: int

    def alive(self) -> bool:
        raise NotImplementedError

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful termination (drain, close ledgers)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Immediate termination — the crash path."""
        raise NotImplementedError


class WorkerManager:
    """Spawns workers somewhere.  ``kind`` names the deployment shape."""

    kind: str = "abstract"

    def spawn(self, spec: WorkerSpec) -> WorkerHandle:
        raise NotImplementedError

    def close(self) -> None:
        """Release manager-level resources (spawned workers are stopped
        individually via their handles, not here)."""


# --------------------------------------------------------------- subprocesses


class _ProcessHandle(WorkerHandle):
    def __init__(self, spec: WorkerSpec, process: subprocess.Popen) -> None:
        self.spec = spec
        self._process = process
        self.pid = process.pid

    def alive(self) -> bool:
        return self._process.poll() is None

    def stop(self, timeout: float = 10.0) -> None:
        if not self.alive():
            return
        self._process.send_signal(signal.SIGTERM)
        try:
            self._process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()

    def kill(self) -> None:
        if self.alive():
            self._process.kill()
        self._process.wait(timeout=10.0)


class LocalProcessManager(WorkerManager):
    """Workers as local subprocesses: ``python -m repro worker ...``.

    The full cluster config travels by file, not argv: the manager
    serialises it once to a private temp file (unless the caller already
    has it on disk) and every worker re-derives its own shard from the
    shared document — the same hash both sides compute.
    """

    kind = "process"

    def __init__(
        self, config: ServerConfig, config_path: Optional[str] = None
    ) -> None:
        self._config = config
        self._owns_config_file = config_path is None
        if config_path is None:
            fd, config_path = tempfile.mkstemp(
                prefix="pcor-cluster-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(config.to_dict(), handle)
        self._config_path = str(config_path)

    @property
    def config_path(self) -> str:
        return self._config_path

    def spawn(self, spec: WorkerSpec) -> WorkerHandle:
        src_root = Path(__file__).resolve().parent.parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p
        )
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--config",
            self._config_path,
            "--shard",
            str(spec.shard),
            "--router",
            spec.router_url,
            "--worker-id",
            spec.worker_id,
        ]
        process = subprocess.Popen(argv, env=env)
        return _ProcessHandle(spec, process)

    def close(self) -> None:
        if self._owns_config_file:
            try:
                os.unlink(self._config_path)
            except OSError:
                pass


# -------------------------------------------------------------------- threads


class _InProcessHandle(WorkerHandle):
    def __init__(self, spec: WorkerSpec, worker: "ReleaseWorker") -> None:
        self.spec = spec
        self.worker = worker
        self.pid = os.getpid()

    def alive(self) -> bool:
        return self.worker.alive

    def stop(self, timeout: float = 10.0) -> None:
        self.worker.stop()

    def kill(self) -> None:
        # No drain, no goodbye heartbeat — as close to SIGKILL as a
        # thread gets.  Durable ledger state is already fsync'd per
        # charge, so what a respawn replays matches a real crash.
        self.worker.kill()


class InProcessWorkerManager(WorkerManager):
    """Workers as threads in this process (tests, dev, demos)."""

    kind = "thread"

    def __init__(self, config: ServerConfig) -> None:
        self._config = config
        self._lock = threading.Lock()

    def spawn(self, spec: WorkerSpec) -> WorkerHandle:
        from repro.cluster.worker import ReleaseWorker

        with self._lock:
            worker = ReleaseWorker(
                self._config,
                shard=spec.shard,
                router_url=spec.router_url,
                worker_id=spec.worker_id,
            )
            worker.start()
        return _InProcessHandle(spec, worker)


def make_worker_manager(
    config: ServerConfig, config_path: Optional[str] = None
) -> WorkerManager:
    """The manager the config asks for (``[cluster] manager = ...``)."""
    cluster = config.cluster
    if cluster is None:
        raise ServerError("make_worker_manager needs a [cluster] section")
    if cluster.manager == "process":
        return LocalProcessManager(config, config_path=config_path)
    if cluster.manager == "thread":
        return InProcessWorkerManager(config)
    raise ServerError(  # unreachable while ClusterConfig validates; defensive
        f"unknown cluster manager {cluster.manager!r}; known: {MANAGER_KINDS}"
    )

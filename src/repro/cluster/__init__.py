"""Sharded serving: a router front end over a fleet of release workers.

``pcor serve --workers N`` (or ``[cluster] workers = N`` in the config)
swaps the single :class:`~repro.server.app.PCORServer` process for:

* a :class:`~repro.cluster.router.PCORRouter` owning the public address
  and **no engines** — it proxies ``/v1/*`` verbatim and aggregates the
  fleet-wide routes;
* ``N`` :class:`~repro.cluster.worker.ReleaseWorker` processes, each
  hosting the disjoint shard of datasets that consistent hashing
  (:mod:`repro.cluster.hashing`) assigns it — so every dataset's budget
  ledger keeps exactly one writer;
* a :class:`~repro.cluster.fleet.WorkerFleet` supervisor that respawns
  crashed workers through a :class:`~repro.cluster.manager.WorkerManager`
  (subprocesses in production, in-process threads in tests); a respawned
  worker replays its ledgers before accepting traffic.

Clients don't change: :class:`~repro.server.client.PCORClient` pointed at
the router behaves exactly as against a single server, bit-identical
releases included.
"""

from repro.cluster.hashing import (
    ConsistentHashRing,
    shard_assignments,
    stable_hash,
)
from repro.cluster.fleet import ShardState, WorkerFleet
from repro.cluster.manager import (
    InProcessWorkerManager,
    LocalProcessManager,
    WorkerHandle,
    WorkerManager,
    WorkerSpec,
    make_worker_manager,
)
from repro.cluster.router import PCORRouter
from repro.cluster.worker import ReleaseWorker, shard_config

__all__ = [
    "ConsistentHashRing",
    "InProcessWorkerManager",
    "LocalProcessManager",
    "PCORRouter",
    "ReleaseWorker",
    "ShardState",
    "WorkerFleet",
    "WorkerHandle",
    "WorkerManager",
    "WorkerSpec",
    "make_worker_manager",
    "shard_assignments",
    "shard_config",
    "stable_hash",
]

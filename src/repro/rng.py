"""Randomness plumbing.

All stochastic behaviour in the library flows through
:class:`numpy.random.Generator` objects.  Public entry points accept either a
``Generator``, an integer seed, or ``None`` and normalise through
:func:`ensure_rng`; internal components receive the resulting generator
explicitly so that every experiment is reproducible from a single seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (fresh non-deterministic generator), an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng)!r}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used by the experiment harness so that repetition ``i`` of an experiment
    sees the same random stream regardless of how many repetitions run.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]

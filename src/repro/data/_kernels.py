"""Optional numba-JIT kernels for the hot mask-index loops.

The pure-NumPy kernels in :mod:`repro.bitops` evaluate the AND-of-OR
population filter as ``t`` fancy-indexed passes over a ``(B, n_words)``
matrix — one NumPy dispatch per predicate.  The compiled kernels here fuse
the whole evaluation (selection gather, per-attribute OR, conjunction AND,
and optionally the popcount) into a single pass with the accumulator held
in a register, which is where the remaining integer-multiple speedup lives.

This module is *runtime-optional*: importing it never requires numba.
:data:`NATIVE_AVAILABLE` reports whether the compiled backend can be used;
the kernel registry in :mod:`repro.bitops` consults it (together with the
``PCOR_NATIVE`` environment override) and keeps the NumPy implementations
as the always-tested fallback.  Every kernel here is pinned bit-identical
to its fallback by the equivalence suite in ``tests/test_kernels.py``.

Bit layout matches :mod:`repro.bitops` exactly: record ``i`` lives in word
``i >> 6`` at position ``i & 63``, padding bits beyond ``n`` are zero in
every predicate row, so fused popcounts need no tail masking.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NATIVE_AVAILABLE = True
except ImportError:  # default environments stay numba-free
    NATIVE_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Decorator stub so the kernel bodies below always parse."""

        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap


# SWAR popcount constants.  Kept as uint64 scalars: numba (like NumPy)
# promotes uint64-with-int64 arithmetic to float64, which would silently
# destroy the high bits.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_ONE = np.uint64(1)
_TWO = np.uint64(2)
_FOUR = np.uint64(4)
_S56 = np.uint64(56)
_ZERO = np.uint64(0)
_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@njit(cache=True, nogil=True)
def _popcount64(x):
    x = x - ((x >> _ONE) & _M1)
    x = (x & _M2) + ((x >> _TWO) & _M2)
    x = (x + (x >> _FOUR)) & _M4
    return (x * _H01) >> _S56


@njit(cache=True, nogil=True)
def popcount_rows(matrix):
    """Row popcounts of a ``(r, w)`` uint64 matrix, as int64."""
    r, w = matrix.shape
    out = np.zeros(r, dtype=np.int64)
    for i in range(r):
        acc = np.int64(0)
        for j in range(w):
            acc += np.int64(_popcount64(matrix[i, j]))
        out[i] = acc
    return out


@njit(cache=True, nogil=True)
def and_of_or(packed, offsets, sizes, selection):
    """Fused AND-of-OR population masks.

    ``packed`` is the ``(t, n_words)`` predicate matrix, ``offsets``/``sizes``
    the int64 per-attribute block layout, ``selection`` the ``(B, t)`` boolean
    context matrix.  Returns the ``(B, n_words)`` packed population masks —
    one pass per (context, word) with the conjunction held in a register,
    instead of ``t`` whole-matrix NumPy dispatches.  An attribute block with
    no selected value zeroes its context's row (empty disjunction is
    unsatisfiable), exactly like the fallback.
    """
    B = selection.shape[0]
    n_words = packed.shape[1]
    m = offsets.shape[0]
    out = np.empty((B, n_words), dtype=np.uint64)
    for b in range(B):
        for w in range(n_words):
            acc = _ONES
            for a in range(m):
                off = offsets[a]
                blk = _ZERO
                for j in range(sizes[a]):
                    if selection[b, off + j]:
                        blk |= packed[off + j, w]
                acc &= blk
                if acc == _ZERO:
                    break
            out[b, w] = acc
    return out


@njit(cache=True, nogil=True)
def and_of_or_counts(packed, offsets, sizes, selection):
    """Fused AND-of-OR *population sizes*: masks are never materialised.

    Same contract as :func:`and_of_or` followed by a row popcount, but the
    per-word conjunction is popcounted straight out of the register, so the
    batch never allocates the ``(B, n_words)`` intermediate.
    """
    B = selection.shape[0]
    n_words = packed.shape[1]
    m = offsets.shape[0]
    out = np.zeros(B, dtype=np.int64)
    for b in range(B):
        total = np.int64(0)
        for w in range(n_words):
            acc = _ONES
            for a in range(m):
                off = offsets[a]
                blk = _ZERO
                for j in range(sizes[a]):
                    if selection[b, off + j]:
                        blk |= packed[off + j, w]
                acc &= blk
                if acc == _ZERO:
                    break
            total += np.int64(_popcount64(acc))
        out[b] = total
    return out


@njit(cache=True, nogil=True)
def intersect_counts(matrix, row):
    """``popcount(matrix[k] & row)`` for every row ``k``, as int64.

    The overlap-utility kernel: intersection sizes of a batch of packed
    population masks against one fixed packed mask, without materialising
    the ANDed matrix.
    """
    r, w = matrix.shape
    out = np.zeros(r, dtype=np.int64)
    for i in range(r):
        acc = np.int64(0)
        for j in range(w):
            acc += np.int64(_popcount64(matrix[i, j] & row[j]))
        out[i] = acc
    return out

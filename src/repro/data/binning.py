"""Discretisation of numeric attributes into categorical context attributes.

The paper's contexts range over predicates on "categorical or numerical"
attributes (Section 3) — its motivating example contains the numeric
predicate ``|Employees| < 2000``.  The context machinery here is
categorical, so numeric context attributes enter through *binning*: a
numeric column is converted into an ordered categorical attribute whose
domain values are interval labels (``"[0, 2000)"`` ...), after which every
piece of the pipeline (bitmaps, graph search, utilities) applies unchanged.

Because a context selects an arbitrary *subset* of bins (disjunction within
the attribute), binned numeric attributes express unions of intervals —
strictly more general than the paper's single-threshold example.

Two strategies:

* ``equal_width`` — fixed-width intervals over [min, max];
* ``quantile``   — equal-population intervals (robust to skew).

Bin edges are part of the *schema*, not the data: like categorical domains
(Section 4), they must be chosen from public knowledge or a sanitised prior
release, not tuned per-dataset, or the edges themselves leak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.table import Dataset
from repro.exceptions import DatasetError, SchemaError
from repro.schema import CategoricalAttribute, Schema


def _format_edge(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:g}"


@dataclass(frozen=True)
class BinSpec:
    """An ordered set of interval bins for one numeric column.

    ``edges`` has ``n_bins + 1`` strictly increasing entries; bin ``j``
    covers ``[edges[j], edges[j+1])`` except the last bin, which is closed
    on the right so the maximum value belongs somewhere.
    """

    name: str
    edges: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise SchemaError(f"bin spec {self.name!r} needs at least 2 edges")
        diffs = np.diff(np.asarray(self.edges, dtype=np.float64))
        if not (diffs > 0).all():
            raise SchemaError(
                f"bin spec {self.name!r} edges must be strictly increasing"
            )

    @property
    def n_bins(self) -> int:
        return len(self.edges) - 1

    def labels(self) -> List[str]:
        """Human-readable interval labels, in bin order."""
        out = []
        for j in range(self.n_bins):
            lo, hi = _format_edge(self.edges[j]), _format_edge(self.edges[j + 1])
            closer = "]" if j == self.n_bins - 1 else ")"
            out.append(f"[{lo}, {hi}{closer}")
        return out

    def assign(self, values: Sequence[float]) -> np.ndarray:
        """Bin index per value; raises if any value falls outside the edges."""
        arr = np.asarray(values, dtype=np.float64)
        lo, hi = self.edges[0], self.edges[-1]
        if ((arr < lo) | (arr > hi)).any():
            bad = arr[(arr < lo) | (arr > hi)][0]
            raise DatasetError(
                f"value {bad} outside bin range [{lo}, {hi}] of {self.name!r}"
            )
        idx = np.searchsorted(np.asarray(self.edges), arr, side="right") - 1
        return np.clip(idx, 0, self.n_bins - 1).astype(np.int64)

    def to_attribute(self) -> CategoricalAttribute:
        """The categorical attribute this spec induces."""
        return CategoricalAttribute(self.name, self.labels())

    # ----------------------------------------------------------- constructors

    @classmethod
    def equal_width(
        cls, name: str, low: float, high: float, n_bins: int
    ) -> "BinSpec":
        """Fixed-width bins over a *publicly known* range."""
        if n_bins < 1:
            raise SchemaError(f"n_bins must be >= 1, got {n_bins}")
        if not low < high:
            raise SchemaError(f"need low < high, got [{low}, {high}]")
        edges = np.linspace(low, high, n_bins + 1)
        return cls(name, tuple(float(e) for e in edges))

    @classmethod
    def quantile(
        cls, name: str, values: Sequence[float], n_bins: int
    ) -> "BinSpec":
        """Equal-population bins fit on ``values``.

        Privacy note: fitting edges on the private data itself leaks; use
        this on public/sanitised data, or treat the resulting schema as part
        of the privacy budget.
        """
        if n_bins < 1:
            raise SchemaError(f"n_bins must be >= 1, got {n_bins}")
        arr = np.asarray(values, dtype=np.float64)
        if arr.size < n_bins + 1:
            raise SchemaError(
                f"need at least {n_bins + 1} values to fit {n_bins} quantile bins"
            )
        qs = np.linspace(0.0, 1.0, n_bins + 1)
        edges = np.quantile(arr, qs)
        edges = np.unique(edges)
        if len(edges) < 2:
            raise SchemaError("values are constant; cannot fit quantile bins")
        return cls(name, tuple(float(e) for e in edges))


def bin_numeric_column(
    dataset: Dataset,
    column_values: Sequence[float],
    spec: BinSpec,
) -> Dataset:
    """Extend ``dataset`` with a binned numeric column as a new attribute.

    Returns a new dataset over an extended schema: the original categorical
    attributes plus ``spec``'s interval attribute (appended last, so
    existing context bit layouts are prefixes of the new one).
    """
    if len(column_values) != len(dataset):
        raise DatasetError(
            f"column has {len(column_values)} values, dataset has {len(dataset)}"
        )
    for attr in dataset.schema.attributes:
        if attr.name == spec.name:
            raise SchemaError(f"attribute {spec.name!r} already exists in schema")

    idx = spec.assign(column_values)
    labels = spec.labels()
    new_schema = Schema(
        attributes=list(dataset.schema.attributes) + [spec.to_attribute()],
        metric=dataset.schema.metric,
    )
    columns = {
        attr.name: [
            attr.domain[int(c)] for c in dataset.codes(attr.name)
        ]
        for attr in dataset.schema.attributes
    }
    columns[spec.name] = [labels[int(j)] for j in idx]
    return Dataset(new_schema, columns, dataset.metric, ids=dataset.ids)

"""Predicate bitmap index: the filtering engine behind context populations.

A context filters the dataset as a conjunction (across attributes) of
disjunctions (across selected values of an attribute).  Precomputing one
boolean record mask per predicate turns population evaluation into

    AND_i ( OR_{j selected in attr i} mask[i][j] )

which is a handful of vectorised numpy passes per context.  This is the
module every sampler, the enumerator, and the verifier funnel through, so it
also keeps simple counters for the experiment harness.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.table import Dataset
from repro.exceptions import ContextError


class PredicateMaskIndex:
    """Per-predicate boolean masks over the records of one dataset."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        schema = dataset.schema
        self.t = schema.t
        self._offsets = schema.offsets
        self._block_sizes = tuple(len(a) for a in schema.attributes)
        # masks[bit] is a bool array of shape (n_records,)
        masks: List[np.ndarray] = []
        for attr in schema.attributes:
            codes = dataset.codes(attr.name)
            for j in range(len(attr)):
                masks.append(codes == j)
        self._masks = masks
        self.population_evaluations = 0  # harness-visible cost counter

    # ------------------------------------------------------------------ core

    def predicate_mask(self, bit: int) -> np.ndarray:
        """Boolean record mask of one predicate (read-only view)."""
        if not 0 <= bit < self.t:
            raise ContextError(f"bit {bit} out of range for t={self.t}")
        view = self._masks[bit].view()
        view.flags.writeable = False
        return view

    def population_mask(self, bits: int) -> np.ndarray:
        """Boolean record mask of the population selected by context ``bits``.

        An attribute block with no selected value yields an empty population
        (the conjunction over an empty disjunction is unsatisfiable), which
        matches the paper's "any non-empty context includes at least one
        predicate of each attribute".
        """
        if bits < 0 or bits >> self.t:
            raise ContextError(f"context bits {bits:#x} out of range for t={self.t}")
        self.population_evaluations += 1
        n = len(self.dataset)
        result: Optional[np.ndarray] = None
        for off, size in zip(self._offsets, self._block_sizes):
            block = (bits >> off) & ((1 << size) - 1)
            if block == 0:
                return np.zeros(n, dtype=bool)
            block_mask: Optional[np.ndarray] = None
            j = 0
            while block:
                if block & 1:
                    m = self._masks[off + j]
                    block_mask = m.copy() if block_mask is None else (block_mask | m)
                block >>= 1
                j += 1
            assert block_mask is not None
            result = block_mask if result is None else (result & block_mask)
            if not result.any():
                # Short-circuit: conjunction already empty.
                return result
        assert result is not None
        return result

    def population_size(self, bits: int) -> int:
        """Number of records selected by context ``bits``."""
        return int(np.count_nonzero(self.population_mask(bits)))

    def population(self, bits: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, record_ids, metric_values)`` of the population."""
        mask = self.population_mask(bits)
        positions = np.flatnonzero(mask)
        return positions, self.dataset.ids[positions], self.dataset.metric[positions]

    # -------------------------------------------------------------- utilities

    def contains_record(self, bits: int, record_id: int) -> bool:
        """Does context ``bits`` select record ``record_id``?

        Each record has exactly one value per attribute, so membership is a
        pure bit test against the record's exact-context bits — no record
        scan needed.
        """
        record_bits = self.dataset.record_bits(record_id)
        return (record_bits & bits) == record_bits

    def reset_counters(self) -> None:
        self.population_evaluations = 0

"""Predicate bitmap index: the filtering engine behind context populations.

A context filters the dataset as a conjunction (across attributes) of
disjunctions (across selected values of an attribute).  Precomputing one
record mask per predicate turns population evaluation into

    AND_i ( OR_{j selected in attr i} mask[i][j] )

The masks are stored *bit-packed*: a ``t x ceil(n/64)`` ``uint64`` matrix
where row ``b`` holds predicate ``b``'s record mask, 64 records per word.
The batch kernels :meth:`PredicateMaskIndex.population_masks` and
:meth:`PredicateMaskIndex.population_sizes` evaluate the AND-of-OR filter
for a whole array of context bitmasks in a handful of word-wise NumPy
passes plus one popcount — no per-record boolean arrays on the hot path.
The scalar APIs are thin wrappers over the batch kernels, so every caller
exercises the same engine.

This is the module every sampler, the enumerator and the verifier funnel
through, so it also keeps simple counters for the experiment harness.
"""

from __future__ import annotations

import threading
from typing import List, Sequence, Tuple

import numpy as np

from repro.bitops import (
    ints_to_bool_matrix,
    pack_bool_matrix,
    popcount_rows,
    unpack_words,
    words_for,
)
from repro.data.table import Dataset
from repro.exceptions import ContextError


class PredicateMaskIndex:
    """Bit-packed per-predicate record masks over one dataset."""

    def __init__(self, dataset: Dataset):
        self.dataset = dataset
        schema = dataset.schema
        self.t = schema.t
        self._offsets = schema.offsets
        self._block_sizes = tuple(len(a) for a in schema.attributes)
        n = len(dataset)
        self.n_words = words_for(n)
        # Boolean predicate masks (one row per predicate bit) exist only as
        # a construction temporary; the index keeps just their packed form,
        # shape (t, ceil(n/64)) uint64 — an 8x memory saving at scale.
        bool_rows = np.empty((self.t, n), dtype=bool)
        row = 0
        for attr in schema.attributes:
            codes = dataset.codes(attr.name)
            for j in range(len(attr)):
                np.equal(codes, j, out=bool_rows[row])
                row += 1
        self._packed = pack_bool_matrix(bool_rows)
        self._counter_lock = threading.Lock()
        self.population_evaluations = 0  # harness-visible cost counter

    @classmethod
    def from_packed(cls, dataset: Dataset, packed: np.ndarray) -> "PredicateMaskIndex":
        """Rebuild an index around an existing packed matrix, without
        re-running the O(t*n) bit-pack pass.

        ``packed`` may be a read-only view — in particular a zero-copy view
        into a :mod:`multiprocessing.shared_memory` segment, which is how
        process workers get the matrix for free.  The caller keeps the
        backing buffer alive for the index's lifetime.
        """
        obj = cls.__new__(cls)
        obj.dataset = dataset
        schema = dataset.schema
        obj.t = schema.t
        obj._offsets = schema.offsets
        obj._block_sizes = tuple(len(a) for a in schema.attributes)
        obj.n_words = words_for(len(dataset))
        arr = np.asarray(packed)
        if arr.dtype != np.uint64 or arr.shape != (obj.t, obj.n_words):
            raise ContextError(
                f"packed matrix must be uint64 of shape ({obj.t}, {obj.n_words}), "
                f"got {arr.dtype} {arr.shape}"
            )
        obj._packed = arr
        obj._counter_lock = threading.Lock()
        obj.population_evaluations = 0
        return obj

    # ------------------------------------------------------------------ core

    @property
    def packed_matrix(self) -> np.ndarray:
        """The ``(t, n_words)`` packed predicate-mask matrix (read-only)."""
        view = self._packed.view()
        view.flags.writeable = False
        return view

    def predicate_mask(self, bit: int) -> np.ndarray:
        """Boolean record mask of one predicate (read-only, unpacked on demand)."""
        if not 0 <= bit < self.t:
            raise ContextError(f"bit {bit} out of range for t={self.t}")
        mask = unpack_words(self._packed[bit], len(self.dataset))
        mask.flags.writeable = False
        return mask

    def population_masks(self, bits_seq: Sequence[int]) -> np.ndarray:
        """Packed population masks for a whole batch of context bitmasks.

        Returns a ``(len(bits_seq), n_words)`` ``uint64`` matrix; row ``k``
        is the bit-packed record mask of context ``bits_seq[k]``.  An
        attribute block with no selected value yields an all-zero row (the
        conjunction over an empty disjunction is unsatisfiable), which
        matches the paper's "any non-empty context includes at least one
        predicate of each attribute".

        The kernel is word-wise: per predicate one masked OR into the block
        accumulator, per attribute one AND into the result — ``t`` passes
        over a ``B x n_words`` matrix, independent of the batch's content.
        """
        bits_list = [int(b) for b in bits_seq]
        for b in bits_list:
            if b < 0 or b >> self.t:
                raise ContextError(
                    f"context bits {b:#x} out of range for t={self.t}"
                )
        batch = len(bits_list)
        # The index is shared by every verifier (and, under the thread
        # backend, by concurrent profile chunks): the counter update must
        # not lose increments.
        with self._counter_lock:
            self.population_evaluations += batch
        selection = ints_to_bool_matrix(bits_list, self.t)  # (B, t)
        result: np.ndarray | None = None
        for off, size in zip(self._offsets, self._block_sizes):
            block_or = np.zeros((batch, self.n_words), dtype=np.uint64)
            for j in range(size):
                rows = selection[:, off + j]
                if rows.any():
                    block_or[rows] |= self._packed[off + j]
            # Rows whose block selected nothing stay all-zero, zeroing the
            # conjunction — exactly the empty-block semantics.
            if result is None:
                result = block_or
            else:
                result &= block_or
        assert result is not None  # schema has >= 1 attribute
        return result

    def population_sizes(self, bits_seq: Sequence[int]) -> np.ndarray:
        """Population size of every context in ``bits_seq`` (int64 array)."""
        return popcount_rows(self.population_masks(bits_seq))

    def population_mask(self, bits: int) -> np.ndarray:
        """Boolean record mask of the population selected by context ``bits``.

        Thin scalar wrapper over :meth:`population_masks`.
        """
        packed = self.population_masks([bits])
        return unpack_words(packed[0], len(self.dataset))

    def population_size(self, bits: int) -> int:
        """Number of records selected by context ``bits``."""
        return int(self.population_sizes([bits])[0])

    def population(self, bits: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, record_ids, metric_values)`` of the population."""
        mask = self.population_mask(bits)
        positions = np.flatnonzero(mask)
        return positions, self.dataset.ids[positions], self.dataset.metric[positions]

    def positions_from_packed(self, packed_row: np.ndarray) -> np.ndarray:
        """Row positions selected by one packed mask row."""
        return np.flatnonzero(unpack_words(packed_row, len(self.dataset)))

    # -------------------------------------------------------------- utilities

    def contains_record(self, bits: int, record_id: int) -> bool:
        """Does context ``bits`` select record ``record_id``?

        Each record has exactly one value per attribute, so membership is a
        pure bit test against the record's exact-context bits — no record
        scan needed.
        """
        record_bits = self.dataset.record_bits(record_id)
        return (record_bits & bits) == record_bits

    def reset_counters(self) -> None:
        with self._counter_lock:
            self.population_evaluations = 0

"""Predicate bitmap index: the filtering engine behind context populations.

A context filters the dataset as a conjunction (across attributes) of
disjunctions (across selected values of an attribute).  Precomputing one
record mask per predicate turns population evaluation into

    AND_i ( OR_{j selected in attr i} mask[i][j] )

The masks are stored *bit-packed*: a ``t x ceil(n/64)`` ``uint64`` matrix
where row ``b`` holds predicate ``b``'s record mask, 64 records per word.
The batch kernels :meth:`PredicateMaskIndex.population_masks` and
:meth:`PredicateMaskIndex.population_sizes` evaluate the AND-of-OR filter
for a whole array of context bitmasks through the kernel registry in
:mod:`repro.bitops` — the NumPy fallback makes ``t`` word-wise passes, the
optional numba backend fuses the whole evaluation into one pass — with no
per-record boolean arrays on the hot path.  The scalar APIs are thin
wrappers over the batch kernels, so every caller exercises the same engine.

The index is *append-only live*: :meth:`PredicateMaskIndex.append` grows
the packed matrix by OR-ing in the new records' bits word-by-word (O(k)
words touched per appended record, no O(t*n) rebuild) and swaps the whole
``(dataset, matrix, version)`` state atomically, so concurrent readers see
either the old or the new dataset, never a torn mix.  ``dataset_version``
increases monotonically with each append; caches keyed off the index use
it for targeted invalidation.

This is the module every sampler, the enumerator and the verifier funnel
through, so it also keeps simple counters for the experiment harness.
"""

from __future__ import annotations

import threading
from typing import Any, List, Mapping, NamedTuple, Sequence, Tuple

import numpy as np

from repro.bitops import (
    active_kernels,
    bool_matrix_to_ints,
    ints_to_bool_matrix,
    pack_bool_matrix,
    unpack_words,
    words_for,
)
from repro.data.table import Dataset
from repro.exceptions import ContextError


class IndexSnapshot(NamedTuple):
    """One coherent view of the index: dataset, packed matrix, version.

    Everything derived from a population evaluation (row positions, record
    ids, metric values) must come from the *same* snapshot the masks were
    evaluated against, or a concurrent append could tear the result.
    """

    dataset: Dataset
    packed: np.ndarray
    version: int


class _PendingAppend(NamedTuple):
    """A fully built append, not yet visible to readers.

    Produced by :meth:`PredicateMaskIndex.prepare_append`, published by
    :meth:`PredicateMaskIndex.commit_append`.  The two-phase split lets the
    engine invalidate version-keyed caches *between* building the new state
    (which validates the records) and making it visible, so no release can
    cache a stale profile under the new version.
    """

    base: IndexSnapshot
    dataset: Dataset
    packed: np.ndarray
    version: int
    record_bits: Tuple[int, ...]
    record_ids: Tuple[int, ...]


class PredicateMaskIndex:
    """Bit-packed per-predicate record masks over one dataset."""

    def __init__(self, dataset: Dataset):
        schema = dataset.schema
        self.t = schema.t
        self._offsets = schema.offsets
        self._block_sizes = tuple(len(a) for a in schema.attributes)
        self._offsets_arr = np.asarray(self._offsets, dtype=np.int64)
        self._sizes_arr = np.asarray(self._block_sizes, dtype=np.int64)
        n = len(dataset)
        n_words = words_for(n)
        # Pack one attribute block at a time into the final matrix: peak
        # construction memory is one (max_block, n) boolean scratch, not the
        # full (t, n) temporary — ~8x less at realistic schemas.
        packed = np.zeros((self.t, n_words), dtype=np.uint64)
        max_block = max(self._block_sizes, default=0)
        scratch = np.empty((max_block, n), dtype=bool)
        row = 0
        for attr in schema.attributes:
            codes = dataset.codes(attr.name)
            block = scratch[: len(attr)]
            for j in range(len(attr)):
                np.equal(codes, j, out=block[j])
            packed[row : row + len(attr)] = pack_bool_matrix(block)
            row += len(attr)
        self._state = IndexSnapshot(dataset, packed, 0)
        self._append_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.population_evaluations = 0  # harness-visible cost counter

    @classmethod
    def from_packed(
        cls,
        dataset: Dataset,
        packed: np.ndarray,
        dataset_version: int = 0,
    ) -> "PredicateMaskIndex":
        """Rebuild an index around an existing packed matrix, without
        re-running the O(t*n) bit-pack pass.

        ``packed`` may be a read-only view — in particular a zero-copy view
        into a :mod:`multiprocessing.shared_memory` segment, which is how
        process workers get the matrix for free.  The caller keeps the
        backing buffer alive for the index's lifetime.  ``dataset_version``
        carries the producing index's append counter across the boundary so
        version-stamped accounting agrees between parent and workers.
        """
        obj = cls.__new__(cls)
        schema = dataset.schema
        obj.t = schema.t
        obj._offsets = schema.offsets
        obj._block_sizes = tuple(len(a) for a in schema.attributes)
        obj._offsets_arr = np.asarray(obj._offsets, dtype=np.int64)
        obj._sizes_arr = np.asarray(obj._block_sizes, dtype=np.int64)
        n_words = words_for(len(dataset))
        arr = np.asarray(packed)
        if arr.dtype != np.uint64 or arr.shape != (obj.t, n_words):
            raise ContextError(
                f"packed matrix must be uint64 of shape ({obj.t}, {n_words}), "
                f"got {arr.dtype} {arr.shape}"
            )
        obj._state = IndexSnapshot(dataset, arr, int(dataset_version))
        obj._append_lock = threading.Lock()
        obj._counter_lock = threading.Lock()
        obj.population_evaluations = 0
        return obj

    # ------------------------------------------------------------------ core

    @property
    def dataset(self) -> Dataset:
        """The dataset currently served (grows under :meth:`append`)."""
        return self._state.dataset

    @property
    def dataset_version(self) -> int:
        """Monotonic append counter: 0 at build, +1 per committed append."""
        return self._state.version

    @property
    def n_words(self) -> int:
        """Packed words per mask row for the current dataset."""
        return self._state.packed.shape[1]

    def snapshot(self) -> IndexSnapshot:
        """Atomically capture ``(dataset, packed, version)``.

        The tuple swap in :meth:`append` makes this safe against concurrent
        appends; derive positions/ids/metrics from the snapshot's dataset,
        not from ``self.dataset``, when coherence with an evaluation
        matters.
        """
        return self._state

    @property
    def packed_matrix(self) -> np.ndarray:
        """The ``(t, n_words)`` packed predicate-mask matrix (read-only)."""
        view = self._state.packed.view()
        view.flags.writeable = False
        return view

    def predicate_mask(self, bit: int) -> np.ndarray:
        """Boolean record mask of one predicate (read-only, unpacked on demand)."""
        if not 0 <= bit < self.t:
            raise ContextError(f"bit {bit} out of range for t={self.t}")
        snap = self._state
        mask = unpack_words(snap.packed[bit], len(snap.dataset))
        mask.flags.writeable = False
        return mask

    def population_masks(
        self,
        bits_seq: Sequence[int],
        snapshot: IndexSnapshot | None = None,
    ) -> np.ndarray:
        """Packed population masks for a whole batch of context bitmasks.

        Returns a ``(len(bits_seq), n_words)`` ``uint64`` matrix; row ``k``
        is the bit-packed record mask of context ``bits_seq[k]``.  An
        attribute block with no selected value yields an all-zero row (the
        conjunction over an empty disjunction is unsatisfiable), which
        matches the paper's "any non-empty context includes at least one
        predicate of each attribute".

        Pass a :meth:`snapshot` to pin the evaluation to one coherent index
        state while deriving positions/ids from the same snapshot; by
        default the current state is captured once at entry.
        """
        snap = self._state if snapshot is None else snapshot
        bits_list = [int(b) for b in bits_seq]
        for b in bits_list:
            if b < 0 or b >> self.t:
                raise ContextError(
                    f"context bits {b:#x} out of range for t={self.t}"
                )
        batch = len(bits_list)
        # The index is shared by every verifier (and, under the thread
        # backend, by concurrent profile chunks): the counter update must
        # not lose increments.
        with self._counter_lock:
            self.population_evaluations += batch
        if batch == 0:
            return np.zeros((0, snap.packed.shape[1]), dtype=np.uint64)
        selection = ints_to_bool_matrix(bits_list, self.t)  # (B, t)
        return active_kernels().batch_and_of_or(
            snap.packed, self._offsets_arr, self._sizes_arr, selection
        )

    def population_sizes(self, bits_seq: Sequence[int]) -> np.ndarray:
        """Population size of every context in ``bits_seq`` (int64 array).

        Under the native backend the masks are never materialised: the
        fused kernel popcounts the conjunction straight out of a register.
        """
        snap = self._state
        bits_list = [int(b) for b in bits_seq]
        for b in bits_list:
            if b < 0 or b >> self.t:
                raise ContextError(
                    f"context bits {b:#x} out of range for t={self.t}"
                )
        batch = len(bits_list)
        with self._counter_lock:
            self.population_evaluations += batch
        if batch == 0:
            return np.zeros(0, dtype=np.int64)
        selection = ints_to_bool_matrix(bits_list, self.t)
        return active_kernels().batch_and_of_or_counts(
            snap.packed, self._offsets_arr, self._sizes_arr, selection
        )

    def population_mask(self, bits: int) -> np.ndarray:
        """Boolean record mask of the population selected by context ``bits``.

        Thin scalar wrapper over :meth:`population_masks`.
        """
        snap = self._state
        packed = self.population_masks([bits], snapshot=snap)
        return unpack_words(packed[0], len(snap.dataset))

    def population_size(self, bits: int) -> int:
        """Number of records selected by context ``bits``."""
        return int(self.population_sizes([bits])[0])

    def population(self, bits: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(positions, record_ids, metric_values)`` of the population."""
        snap = self._state
        packed = self.population_masks([bits], snapshot=snap)
        positions = np.flatnonzero(unpack_words(packed[0], len(snap.dataset)))
        return (
            positions,
            snap.dataset.ids[positions],
            snap.dataset.metric[positions],
        )

    def positions_from_packed(
        self,
        packed_row: np.ndarray,
        n_records: int | None = None,
    ) -> np.ndarray:
        """Row positions selected by one packed mask row.

        ``n_records`` pins the unpack length to the snapshot the row was
        evaluated against (defaults to the current dataset's length).
        """
        n = len(self._state.dataset) if n_records is None else int(n_records)
        return np.flatnonzero(unpack_words(packed_row, n))

    # --------------------------------------------------------------- appends

    def prepare_append(
        self, records: Sequence[Mapping[str, Any]]
    ) -> _PendingAppend:
        """Build (but do not publish) the post-append index state.

        Validates and appends the records via the O(k) fast path
        :meth:`Dataset.append`, copies the packed matrix into a
        ``(t, ceil((n+k)/64))`` buffer and OR-s each appended record's
        ``m`` predicate bits into its word — the update is fully
        vectorised (one ``bitwise_or.at`` scatter per attribute), no
        O(t*n) repack and no per-record Python loop.
        """
        rows = [dict(r) for r in records]
        base = self._state
        new_dataset = base.dataset.append(rows)
        old_n = len(base.dataset)
        k = len(new_dataset) - old_n
        new_packed = np.zeros((self.t, words_for(len(new_dataset))), dtype=np.uint64)
        new_packed[:, : base.packed.shape[1]] = base.packed
        positions = np.arange(old_n, old_n + k, dtype=np.int64)
        words = positions >> 6
        word_bits = np.uint64(1) << (positions & 63).astype(np.uint64)
        row_range = np.arange(k)
        flags = np.zeros((k, self.t), dtype=bool)
        for off, attr in zip(self._offsets, new_dataset.schema.attributes):
            predicate_rows = off + new_dataset.codes(attr.name)[old_n:].astype(
                np.int64
            )
            # .at, not fancy assignment: two appended records in the same
            # word and predicate must both land their bits.
            np.bitwise_or.at(new_packed, (predicate_rows, words), word_bits)
            flags[row_range, predicate_rows] = True
        record_bits = bool_matrix_to_ints(flags)
        return _PendingAppend(
            base=base,
            dataset=new_dataset,
            packed=new_packed,
            version=base.version + 1,
            record_bits=tuple(record_bits),
            record_ids=tuple(int(r) for r in new_dataset.ids[old_n:]),
        )

    def commit_append(self, pending: _PendingAppend) -> Dataset:
        """Atomically publish a prepared append; returns the new dataset.

        Readers mid-evaluation keep the snapshot they captured; every call
        after the commit sees the grown dataset and the bumped version.
        Committing against a state other than the one the append was
        prepared from raises (appends must be serialised by the caller).
        """
        with self._append_lock:
            if self._state is not pending.base:
                raise ContextError(
                    "stale append: the index advanced since prepare_append "
                    "(serialise appends through one writer)"
                )
            self._state = IndexSnapshot(
                pending.dataset, pending.packed, pending.version
            )
        return pending.dataset

    def append(self, records: Sequence[Mapping[str, Any]]) -> Dataset:
        """Append records in one step (prepare + commit under the lock).

        Convenience for standalone index use; :class:`ReleaseEngine` drives
        the two-phase form so it can invalidate version-keyed caches
        between build and publish.
        """
        with self._append_lock:
            pending = self.prepare_append(records)
            if self._state is not pending.base:  # pragma: no cover - guarded
                raise ContextError("concurrent append detected")
            self._state = IndexSnapshot(
                pending.dataset, pending.packed, pending.version
            )
        return pending.dataset

    # -------------------------------------------------------------- utilities

    def contains_record(self, bits: int, record_id: int) -> bool:
        """Does context ``bits`` select record ``record_id``?

        Each record has exactly one value per attribute, so membership is a
        pure bit test against the record's exact-context bits — no record
        scan needed.
        """
        record_bits = self.dataset.record_bits(record_id)
        return (record_bits & bits) == record_bits

    def reset_counters(self) -> None:
        with self._counter_lock:
            self.population_evaluations = 0

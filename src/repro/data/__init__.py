"""Dataset substrate: column-store table, predicate bitmap index, generators."""

from repro.data.binning import BinSpec, bin_numeric_column
from repro.data.generators import (
    homicide_reduced,
    salary_reduced,
    synthetic_homicide_dataset,
    synthetic_salary_dataset,
    tiny_income_dataset,
)
from repro.data.masks import PredicateMaskIndex
from repro.data.neighbors import add_random_records, remove_random_records
from repro.data.table import Dataset

__all__ = [
    "Dataset",
    "BinSpec",
    "bin_numeric_column",
    "PredicateMaskIndex",
    "synthetic_salary_dataset",
    "synthetic_homicide_dataset",
    "salary_reduced",
    "homicide_reduced",
    "tiny_income_dataset",
    "add_random_records",
    "remove_random_records",
]

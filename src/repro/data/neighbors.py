"""Neighbouring-dataset generation for OCDP experiments (Section 6.7).

Differential privacy reasons about datasets differing in one record
(add/remove).  The COE-match and group-privacy experiments of Section 6.7
need neighbours at Hamming distances Delta-D of 1, 5, 10 and 25, optionally
protecting the queried outlier record from removal (it must exist in both
datasets for ``COE_M(D, V)`` to be defined on both sides).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.table import Dataset
from repro.exceptions import DatasetError
from repro.rng import RngLike, ensure_rng


def remove_random_records(
    dataset: Dataset,
    delta: int,
    rng: RngLike = None,
    protected_ids: Sequence[int] = (),
) -> Dataset:
    """Remove ``delta`` uniformly random records, never touching ``protected_ids``."""
    gen = ensure_rng(rng)
    protected = {int(r) for r in protected_ids}
    candidates = [int(r) for r in dataset.ids if int(r) not in protected]
    if delta < 0:
        raise DatasetError(f"delta must be non-negative, got {delta}")
    if delta > len(candidates):
        raise DatasetError(
            f"cannot remove {delta} records: only {len(candidates)} unprotected"
        )
    chosen = gen.choice(len(candidates), size=delta, replace=False)
    return dataset.without_records([candidates[int(i)] for i in chosen])


def add_random_records(
    dataset: Dataset,
    delta: int,
    rng: RngLike = None,
) -> Dataset:
    """Append ``delta`` plausible records resampled from the dataset itself.

    Each new record copies the categorical values of a random existing record
    and draws its metric from a normal fit of that record's exact-context
    population (falling back to the global distribution when the context is
    tiny).  This keeps the neighbour realistic rather than adversarial.
    """
    gen = ensure_rng(rng)
    if delta < 0:
        raise DatasetError(f"delta must be non-negative, got {delta}")
    if delta == 0:
        return dataset
    if len(dataset) == 0:
        raise DatasetError("cannot resample records from an empty dataset")

    metric = dataset.metric
    global_mu = float(metric.mean())
    global_sd = float(metric.std()) or 1.0

    new_rows: List[Dict[str, object]] = []
    template_positions = gen.integers(0, len(dataset), size=delta)
    for pos in template_positions:
        rid = int(dataset.ids[int(pos)])
        template = dataset.record(rid)
        # Metric values of records sharing all categorical values.
        same = np.ones(len(dataset), dtype=bool)
        for attr in dataset.schema.attributes:
            codes = dataset.codes(attr.name)
            same &= codes == codes[int(pos)]
        local = metric[same]
        if local.size >= 5:
            mu, sd = float(local.mean()), float(local.std()) or global_sd
        else:
            mu, sd = global_mu, global_sd
        row: Dict[str, object] = {
            attr.name: template[attr.name] for attr in dataset.schema.attributes
        }
        row[dataset.schema.metric.name] = float(gen.normal(mu, sd))
        new_rows.append(row)
    return dataset.with_records(new_rows)


def neighboring_dataset(
    dataset: Dataset,
    delta: int = 1,
    mode: str = "remove",
    rng: RngLike = None,
    protected_ids: Sequence[int] = (),
) -> Dataset:
    """One neighbour at distance ``delta``: ``mode`` in {remove, add, mixed}."""
    gen = ensure_rng(rng)
    if mode == "remove":
        return remove_random_records(dataset, delta, gen, protected_ids)
    if mode == "add":
        return add_random_records(dataset, delta, gen)
    if mode == "mixed":
        n_remove = int(gen.integers(0, delta + 1))
        out = remove_random_records(dataset, n_remove, gen, protected_ids)
        return add_random_records(out, delta - n_remove, gen)
    raise DatasetError(f"unknown neighbour mode {mode!r}")

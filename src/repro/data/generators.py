"""Synthetic dataset generators standing in for the paper's two datasets.

The paper evaluates on (i) Ontario's public-sector salary disclosure
("sunshine list": 51,000 rows; Jobtitle x9, Employer x8, Year x8, Salary) and
(ii) the Murder Accountability Project homicide reports (110,000 rows;
AgencyType x4, State x6, Weapon x6, VictimAge).  Neither raw file ships with
this repository, so we generate synthetic tables with the same schemas,
domain sizes and — critically — the same *structure*: the metric distribution
depends on the categorical context, and a small fraction of records are
planted contextual anomalies (normal globally, extreme within their local
context).  PCOR only observes the data through context filtering and the 1-d
metric of the filtered population, so this preserves every behaviour the
algorithms are sensitive to.

Two fidelity details from the paper are kept:

* Attribute domains include values that never appear in the data (Section 4
  requires enumerating the declared domain, not the observed values).
* "Reduced" presets mirror Section 6.5/6.7: salary with 3 attributes and 14
  attribute values total, homicide with 3 attributes and 12.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.table import Dataset
from repro.rng import RngLike, ensure_rng
from repro.schema import CategoricalAttribute, MetricAttribute, Schema

# --------------------------------------------------------------------- salary

SALARY_JOB_TITLES = (
    "Professor",
    "Physician",
    "PoliceSergeant",
    "Firefighter",
    "Nurse",
    "Engineer",
    "Director",
    "Judge",
    "DeputyMinister",  # kept in the domain but absent from generated data
)
SALARY_EMPLOYERS = (
    "UniversityOfToronto",
    "CityOfToronto",
    "OntarioPowerGen",
    "HydroOne",
    "TorontoPolice",
    "McMasterUniversity",
    "CityOfOttawa",
    "ProvincialCourts",  # absent from generated data
)
SALARY_YEARS = tuple(str(y) for y in range(2012, 2020))  # 8 years

_JOB_BASE = {
    "Professor": 135_000.0,
    "Physician": 190_000.0,
    "PoliceSergeant": 115_000.0,
    "Firefighter": 108_000.0,
    "Nurse": 104_000.0,
    "Engineer": 118_000.0,
    "Director": 150_000.0,
    "Judge": 230_000.0,
    "DeputyMinister": 260_000.0,
}
_EMPLOYER_FACTOR = {
    "UniversityOfToronto": 1.06,
    "CityOfToronto": 1.00,
    "OntarioPowerGen": 1.12,
    "HydroOne": 1.10,
    "TorontoPolice": 1.02,
    "McMasterUniversity": 1.01,
    "CityOfOttawa": 0.97,
    "ProvincialCourts": 1.05,
}


def salary_schema() -> Schema:
    """Full salary schema: Jobtitle x9, Employer x8, Year x8, metric Salary."""
    return Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", SALARY_JOB_TITLES),
            CategoricalAttribute("Employer", SALARY_EMPLOYERS),
            CategoricalAttribute("Year", SALARY_YEARS),
        ],
        metric=MetricAttribute("Salary"),
    )


def synthetic_salary_dataset(
    n_records: int = 51_000,
    seed: RngLike = 0,
    anomaly_fraction: float = 0.01,
    schema: Optional[Schema] = None,
) -> Dataset:
    """Generate a synthetic Ontario-salary-style dataset.

    Salaries are log-normal around a job-title base scaled by an employer
    factor and yearly 1.8% growth; ``anomaly_fraction`` of the records are
    planted contextual outliers whose salary sits 3.5-6 local standard
    deviations from their (job, employer) group mean while staying within
    the global salary range.
    """
    rng = ensure_rng(seed)
    if schema is None:
        schema = salary_schema()
    return _generate_contextual(
        schema=schema,
        n_records=n_records,
        rng=rng,
        anomaly_fraction=anomaly_fraction,
        base_fn=_salary_base,
        sigma=0.13,
        absent_values={"Jobtitle": {"DeputyMinister"}, "Employer": {"ProvincialCourts"}},
    )


def _salary_base(values: Dict[str, str]) -> float:
    base = _JOB_BASE[values["Jobtitle"]]
    factor = _EMPLOYER_FACTOR[values["Employer"]]
    year_idx = SALARY_YEARS.index(values["Year"])
    return base * factor * (1.018 ** year_idx)


def salary_reduced(
    n_records: int = 11_000,
    seed: RngLike = 0,
    anomaly_fraction: float = 0.01,
) -> Dataset:
    """Reduced salary dataset of Sections 6.5/6.7.

    Three attributes with 14 attribute values in total (6 + 4 + 4), 11,000
    records by default.
    """
    schema = Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", SALARY_JOB_TITLES[:6]),
            CategoricalAttribute("Employer", SALARY_EMPLOYERS[:4]),
            CategoricalAttribute("Year", SALARY_YEARS[:4]),
        ],
        metric=MetricAttribute("Salary"),
    )
    return synthetic_salary_dataset(
        n_records=n_records,
        seed=seed,
        anomaly_fraction=anomaly_fraction,
        schema=schema,
    )


# ------------------------------------------------------------------- homicide

HOMICIDE_AGENCY_TYPES = (
    "MunicipalPolice",
    "CountySheriff",
    "StatePolice",
    "FederalAgency",  # absent from generated data
)
HOMICIDE_STATES = ("California", "Texas", "NewYork", "Florida", "Illinois", "Alaska")
HOMICIDE_WEAPONS = ("Handgun", "Knife", "BluntObject", "Shotgun", "Strangulation", "Poison")

_STATE_AGE_SHIFT = {
    "California": 0.0,
    "Texas": -1.5,
    "NewYork": 1.0,
    "Florida": 6.0,
    "Illinois": -3.0,
    "Alaska": -2.0,
}
_WEAPON_AGE_BASE = {
    "Handgun": 29.0,
    "Knife": 33.0,
    "BluntObject": 41.0,
    "Shotgun": 31.0,
    "Strangulation": 38.0,
    "Poison": 47.0,
}


def homicide_schema() -> Schema:
    """Full homicide schema: AgencyType x4, State x6, Weapon x6, metric VictimAge."""
    return Schema(
        attributes=[
            CategoricalAttribute("AgencyType", HOMICIDE_AGENCY_TYPES),
            CategoricalAttribute("State", HOMICIDE_STATES),
            CategoricalAttribute("Weapon", HOMICIDE_WEAPONS),
        ],
        metric=MetricAttribute("VictimAge"),
    )


def synthetic_homicide_dataset(
    n_records: int = 110_000,
    seed: RngLike = 0,
    anomaly_fraction: float = 0.01,
    schema: Optional[Schema] = None,
) -> Dataset:
    """Generate a synthetic homicide-reports-style dataset (metric VictimAge)."""
    rng = ensure_rng(seed)
    if schema is None:
        schema = homicide_schema()
    return _generate_contextual(
        schema=schema,
        n_records=n_records,
        rng=rng,
        anomaly_fraction=anomaly_fraction,
        base_fn=_homicide_base,
        sigma=0.24,
        absent_values={"AgencyType": {"FederalAgency"}},
        metric_floor=1.0,
    )


def _homicide_base(values: Dict[str, str]) -> float:
    return max(
        12.0,
        _WEAPON_AGE_BASE[values["Weapon"]] + _STATE_AGE_SHIFT[values["State"]],
    )


def homicide_reduced(
    n_records: int = 28_000,
    seed: RngLike = 0,
    anomaly_fraction: float = 0.01,
) -> Dataset:
    """Reduced homicide dataset of Section 6.7.

    Three attributes with 12 attribute values in total (4 + 4 + 4), 28,000
    records by default.
    """
    schema = Schema(
        attributes=[
            CategoricalAttribute("AgencyType", HOMICIDE_AGENCY_TYPES),
            CategoricalAttribute("State", HOMICIDE_STATES[:4]),
            CategoricalAttribute("Weapon", HOMICIDE_WEAPONS[:4]),
        ],
        metric=MetricAttribute("VictimAge"),
    )
    return synthetic_homicide_dataset(
        n_records=n_records,
        seed=seed,
        anomaly_fraction=anomaly_fraction,
        schema=schema,
    )


# -------------------------------------------------------------- shared engine


def _generate_contextual(
    schema: Schema,
    n_records: int,
    rng: np.random.Generator,
    anomaly_fraction: float,
    base_fn,
    sigma: float,
    absent_values: Optional[Dict[str, set]] = None,
    metric_floor: Optional[float] = None,
) -> Dataset:
    """Shared generator: context-dependent log-normal metric + planted anomalies."""
    if n_records <= 0:
        raise ValueError(f"n_records must be positive, got {n_records}")
    if not 0.0 <= anomaly_fraction < 1.0:
        raise ValueError(f"anomaly_fraction must be in [0, 1), got {anomaly_fraction}")
    absent_values = absent_values or {}

    columns: Dict[str, List[str]] = {}
    for attr in schema.attributes:
        present = [v for v in attr.domain if v not in absent_values.get(attr.name, set())]
        # Skewed category frequencies (Zipf-ish) look more like real data
        # than uniform draws and create populations of very different sizes.
        weights = np.array([1.0 / (k + 1) for k in range(len(present))])
        weights /= weights.sum()
        draws = rng.choice(len(present), size=n_records, p=weights)
        columns[attr.name] = [present[int(d)] for d in draws]

    base = np.empty(n_records, dtype=np.float64)
    for row in range(n_records):
        values = {attr.name: columns[attr.name][row] for attr in schema.attributes}
        base[row] = base_fn(values)
    metric = base * np.exp(rng.normal(0.0, sigma, size=n_records))

    # Plant contextual anomalies: push the metric ~3.5-6 local sigmas away
    # from the record's own (multiplicative) group location, alternating
    # direction, then clamp into the global range so the record stays
    # unremarkable for the whole-dataset view.
    n_anomalies = int(round(anomaly_fraction * n_records))
    if n_anomalies:
        anomaly_rows = rng.choice(n_records, size=n_anomalies, replace=False)
        global_lo, global_hi = float(metric.min()), float(metric.max())
        shifts = rng.uniform(3.5, 6.0, size=n_anomalies)
        signs = rng.choice([-1.0, 1.0], size=n_anomalies)
        for k, row in enumerate(anomaly_rows):
            local_sigma = base[row] * sigma  # first-order lognormal std
            shifted = base[row] + signs[k] * shifts[k] * local_sigma
            metric[row] = float(np.clip(shifted, global_lo, global_hi))

    if metric_floor is not None:
        metric = np.maximum(metric, metric_floor)

    return Dataset(schema, columns, metric)


# -------------------------------------------------------------- tiny example


def tiny_income_dataset() -> Dataset:
    """The 10-record running example of Table 1 in the paper.

    Categorical attributes Jobtitle/City/District each with a 3-value domain
    and a Salary metric.  Record 8 (id 7) is the paper's outlier ``V``.
    """
    schema = Schema(
        attributes=[
            CategoricalAttribute("Jobtitle", ["CEO", "MedicalDoctor", "Lawyer"]),
            CategoricalAttribute("City", ["Montreal", "Ottawa", "Toronto"]),
            CategoricalAttribute("District", ["Business", "Historic", "Diplomatic"]),
        ],
        metric=MetricAttribute("Salary"),
    )
    rows: Sequence[Dict[str, object]] = [
        {"Jobtitle": "MedicalDoctor", "City": "Montreal", "District": "Business", "Salary": 210_000},
        {"Jobtitle": "Lawyer", "City": "Toronto", "District": "Business", "Salary": 190_000},
        {"Jobtitle": "CEO", "City": "Ottawa", "District": "Diplomatic", "Salary": 455_000},
        {"Jobtitle": "Lawyer", "City": "Toronto", "District": "Business", "Salary": 205_000},
        {"Jobtitle": "Lawyer", "City": "Ottawa", "District": "Diplomatic", "Salary": 240_000},
        {"Jobtitle": "MedicalDoctor", "City": "Toronto", "District": "Historic", "Salary": 225_000},
        {"Jobtitle": "Lawyer", "City": "Ottawa", "District": "Business", "Salary": 215_000},
        {"Jobtitle": "Lawyer", "City": "Ottawa", "District": "Diplomatic", "Salary": 690_000},
        {"Jobtitle": "CEO", "City": "Montreal", "District": "Historic", "Salary": 470_000},
        {"Jobtitle": "MedicalDoctor", "City": "Toronto", "District": "Diplomatic", "Salary": 230_000},
    ]
    return Dataset.from_records(schema, rows)

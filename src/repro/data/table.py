"""A small column-store relational table.

The paper treats the dataset as a relation with categorical attributes and
one numeric metric column.  PCOR only ever touches the data through two
operations — filter records by a context, and read the metric values of the
filtered population — so the substrate is a column store:

* each categorical column is an ``int16`` array of domain-value codes,
* the metric column is a ``float64`` array,
* per-predicate boolean masks (see :mod:`repro.data.masks`) make context
  filtering a handful of vectorised OR/AND passes.

Records are identified by *stable record ids* (the ``ids`` array) which
survive record removal/addition; positions (row indices) do not.  Everything
that crosses dataset versions — neighbouring datasets in particular — speaks
record ids, never positions.
"""

from __future__ import annotations

from collections import ChainMap
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError, SchemaError
from repro.schema import Schema


class Dataset:
    """An immutable dataset instance ``D`` of a schema ``R``.

    Parameters
    ----------
    schema:
        The relational schema (categorical attributes + metric).
    columns:
        Mapping from categorical attribute name to a sequence of values.
    metric_values:
        The numeric metric column, same length as every categorical column.
    ids:
        Optional stable record ids.  Defaults to ``0..n-1``.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, Sequence[str]],
        metric_values: Sequence[float],
        ids: Optional[Sequence[int]] = None,
    ):
        self.schema = schema
        metric = self._coerce_metric(metric_values)
        n = metric.shape[0]

        codes: Dict[str, np.ndarray] = {}
        for attr in schema.attributes:
            if attr.name not in columns:
                raise DatasetError(f"missing column for attribute {attr.name!r}")
            raw = columns[attr.name]
            if len(raw) != n:
                raise DatasetError(
                    f"column {attr.name!r} has {len(raw)} rows, metric has {n}"
                )
            col = np.empty(n, dtype=np.int16)
            lookup = {v: j for j, v in enumerate(attr.domain)}
            for row, value in enumerate(raw):
                try:
                    col[row] = lookup[str(value)]
                except KeyError:
                    raise DatasetError(
                        f"row {row}: value {value!r} not in domain of {attr.name!r}"
                    ) from None
            codes[attr.name] = col

        self._finish_init(codes, metric, ids)

    @staticmethod
    def _coerce_metric(metric_values: Sequence[float]) -> np.ndarray:
        """Validated *fresh copy* of the metric column (never aliases input)."""
        metric = np.array(metric_values, dtype=np.float64)
        if metric.ndim != 1:
            raise DatasetError("metric column must be one-dimensional")
        if not np.all(np.isfinite(metric)):
            raise DatasetError("metric column contains non-finite values")
        return metric

    def _finish_init(
        self,
        codes: Dict[str, np.ndarray],
        metric: np.ndarray,
        ids: Optional[Sequence[int]],
    ) -> None:
        """Shared tail of construction once code arrays exist."""
        n = metric.shape[0]
        if ids is None:
            id_arr = np.arange(n, dtype=np.int64)
        else:
            # Fresh copy: the ids array must not alias caller memory either.
            id_arr = np.array(ids, dtype=np.int64)
            if id_arr.shape != (n,):
                raise DatasetError("ids must have one entry per record")
            if len(np.unique(id_arr)) != n:
                raise DatasetError("record ids must be unique")

        self._codes = codes
        self._metric = metric
        self._ids = id_arr
        self._id_to_pos = {int(rid): pos for pos, rid in enumerate(id_arr)}
        # Smallest id guaranteed never to have been used. Propagated through
        # without_records/with_records so removed ids are never resurrected
        # (record identity must be stable across neighbouring datasets).
        self._id_ceiling = int(id_arr.max()) + 1 if n else 0
        # Precompute per-record "exact context" bits lazily.
        self._record_bits_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_codes(
        cls,
        schema: Schema,
        codes: Mapping[str, np.ndarray],
        metric_values: Sequence[float],
        ids: Optional[Sequence[int]] = None,
    ) -> "Dataset":
        """Build a dataset directly from integer domain-code arrays.

        The fast constructor behind every dataset rebuild
        (:meth:`without_positions`, :meth:`with_records`): no per-cell
        string round-trip, just vectorised range checks on the code arrays.
        """
        obj = cls.__new__(cls)
        obj.schema = schema
        metric = cls._coerce_metric(metric_values)
        n = metric.shape[0]
        checked: Dict[str, np.ndarray] = {}
        for attr in schema.attributes:
            if attr.name not in codes:
                raise DatasetError(f"missing column for attribute {attr.name!r}")
            raw = np.asarray(codes[attr.name])
            if raw.shape != (n,):
                raise DatasetError(
                    f"column {attr.name!r} has "
                    f"{raw.shape[0] if raw.ndim == 1 else raw.shape} rows, "
                    f"metric has {n}"
                )
            if raw.size and not np.issubdtype(raw.dtype, np.integer):
                raise DatasetError(
                    f"column {attr.name!r} codes must be an integer array, "
                    f"got dtype {raw.dtype}"
                )
            # Validate on the original values *before* the int16 cast, so
            # out-of-range codes fail loudly instead of wrapping into valid
            # ones; astype then yields a fresh copy (datasets are immutable,
            # so the caller's array must never alias our column).
            if n and ((raw < 0) | (raw >= len(attr))).any():
                raise DatasetError(
                    f"column {attr.name!r} has codes outside domain of size {len(attr)}"
                )
            checked[attr.name] = raw.astype(np.int16)
        obj._finish_init(checked, metric, ids)
        return obj

    @classmethod
    def from_records(
        cls,
        schema: Schema,
        records: Iterable[Mapping[str, object]],
        ids: Optional[Sequence[int]] = None,
    ) -> "Dataset":
        """Build a dataset from row dictionaries including the metric column."""
        rows = list(records)
        columns: Dict[str, List[str]] = {a.name: [] for a in schema.attributes}
        metric: List[float] = []
        for row in rows:
            for attr in schema.attributes:
                if attr.name not in row:
                    raise DatasetError(f"record missing attribute {attr.name!r}")
                columns[attr.name].append(str(row[attr.name]))
            if schema.metric.name not in row:
                raise DatasetError(f"record missing metric {schema.metric.name!r}")
            metric.append(float(row[schema.metric.name]))  # type: ignore[arg-type]
        return cls(schema, columns, metric, ids=ids)

    # ----------------------------------------------------------------- basics

    def __len__(self) -> int:
        return int(self._metric.shape[0])

    @property
    def n_records(self) -> int:
        return len(self)

    @property
    def ids(self) -> np.ndarray:
        """Stable record ids, aligned with row positions (read-only view)."""
        view = self._ids.view()
        view.flags.writeable = False
        return view

    @property
    def metric(self) -> np.ndarray:
        """The metric column (read-only view)."""
        view = self._metric.view()
        view.flags.writeable = False
        return view

    def codes(self, attribute: str) -> np.ndarray:
        """Domain-value codes of a categorical column (read-only view)."""
        if attribute not in self._codes:
            raise DatasetError(f"no categorical column {attribute!r}")
        view = self._codes[attribute].view()
        view.flags.writeable = False
        return view

    def position_of(self, record_id: int) -> int:
        """Row position of a stable record id."""
        try:
            return self._id_to_pos[int(record_id)]
        except KeyError:
            raise DatasetError(f"no record with id {record_id}") from None

    def has_record(self, record_id: int) -> bool:
        return int(record_id) in self._id_to_pos

    def record(self, record_id: int) -> Dict[str, object]:
        """Materialise one record (attribute values + metric) by id."""
        pos = self.position_of(record_id)
        row: Dict[str, object] = {}
        for attr in self.schema.attributes:
            row[attr.name] = attr.domain[int(self._codes[attr.name][pos])]
        row[self.schema.metric.name] = float(self._metric[pos])
        return row

    def iter_records(self) -> Iterable[Tuple[int, Dict[str, object]]]:
        """Yield ``(record_id, record_dict)`` pairs in row order."""
        for rid in self._ids:
            yield int(rid), self.record(int(rid))

    # ----------------------------------------------------------- context bits

    def record_bits(self, record_id: int) -> int:
        """Exact-context bitmask of record ``record_id`` (see Schema.record_bits)."""
        all_bits = self.all_record_bits()
        return int(all_bits[self.position_of(record_id)])

    def all_record_bits(self) -> np.ndarray:
        """Exact-context bitmask of every record as an ``object`` array of ints.

        One shift-table lookup plus one OR per attribute; the per-record
        loop happens inside NumPy's object-array dispatch, never in Python.
        (``object`` dtype because ``t`` can exceed 64 bits.)
        """
        if self._record_bits_cache is None:
            bits = np.zeros(len(self), dtype=np.object_)
            for off, attr in zip(self.schema.offsets, self.schema.attributes):
                shifts = np.array(
                    [1 << (off + j) for j in range(len(attr))], dtype=np.object_
                )
                bits = bits | shifts[self._codes[attr.name]]
            self._record_bits_cache = bits
        return self._record_bits_cache

    # ------------------------------------------------------------- mutations
    # Datasets are immutable; "mutations" return new Dataset objects that
    # preserve stable ids. These back the neighbouring-dataset machinery.

    def without_positions(self, positions: Sequence[int]) -> "Dataset":
        """A new dataset with the given row positions removed."""
        drop = set(int(p) for p in positions)
        for p in drop:
            if not 0 <= p < len(self):
                raise DatasetError(f"position {p} out of range")
        keep_mask = np.ones(len(self), dtype=bool)
        keep_mask[list(drop)] = False
        keep = np.flatnonzero(keep_mask)
        out = Dataset.from_codes(
            self.schema,
            {name: col[keep] for name, col in self._codes.items()},
            self._metric[keep],
            ids=self._ids[keep],
        )
        out._id_ceiling = max(out._id_ceiling, self._id_ceiling)
        return out

    def without_records(self, record_ids: Sequence[int]) -> "Dataset":
        """A new dataset with the given stable record ids removed."""
        return self.without_positions([self.position_of(r) for r in record_ids])

    def with_records(
        self, records: Iterable[Mapping[str, object]], start_id: Optional[int] = None
    ) -> "Dataset":
        """A new dataset with extra records appended (fresh stable ids)."""
        rows = list(records)
        if not rows:
            return self
        next_id = self._id_ceiling
        if start_id is not None:
            next_id = max(next_id, int(start_id))
        # Only the appended rows go through domain-value lookup; the existing
        # records are carried over as raw code arrays.
        new_codes: Dict[str, np.ndarray] = {}
        for attr in self.schema.attributes:
            lookup = {v: j for j, v in enumerate(attr.domain)}
            col = np.empty(len(rows), dtype=np.int16)
            for i, row in enumerate(rows):
                if attr.name not in row:
                    raise DatasetError(f"record missing attribute {attr.name!r}")
                value = str(row[attr.name])
                try:
                    col[i] = lookup[value]
                except KeyError:
                    raise DatasetError(
                        f"row {i}: value {value!r} not in domain of {attr.name!r}"
                    ) from None
            new_codes[attr.name] = np.concatenate([self._codes[attr.name], col])
        new_metric = np.array(
            [float(row[self.schema.metric.name]) for row in rows],  # type: ignore[arg-type]
            dtype=np.float64,
        )
        new_ids = np.arange(next_id, next_id + len(rows), dtype=np.int64)
        return Dataset.from_codes(
            self.schema,
            new_codes,
            np.concatenate([self._metric, new_metric]),
            ids=np.concatenate([self._ids, new_ids]),
        )

    #: Appends stack one small id-map layer per call; past this depth the
    #: layers are flattened into one dict so lookups stay O(1).
    _ID_MAP_MAX_DEPTH = 8

    def append(self, records: Iterable[Mapping[str, object]]) -> "Dataset":
        """O(k) append for the live pipeline — bit-identical to
        :meth:`with_records`, without its O(n) re-validation.

        Datasets are immutable: appending returns a *new* dataset sharing
        the schema, with fresh stable ids for the new rows.  Only the ``k``
        appended rows are validated (domain lookup, finite metric); the
        base's columns are carried over by concatenation, its id index is
        *shared* through a chained mapping (appended ids are fresh by the
        id-ceiling invariant, so layers can never collide), and a warmed
        record-bits cache is extended rather than recomputed.  The live path
        (:meth:`repro.service.engine.ReleaseEngine.append`) rides on this to
        grow the served dataset without O(n) per-append work.
        """
        rows = list(records)
        if not rows:
            return self
        k = len(rows)
        old_n = len(self)
        next_id = self._id_ceiling

        tail_codes: Dict[str, np.ndarray] = {}
        for attr in self.schema.attributes:
            lookup = {v: j for j, v in enumerate(attr.domain)}
            col = np.empty(k, dtype=np.int16)
            for i, row in enumerate(rows):
                if attr.name not in row:
                    raise DatasetError(f"record missing attribute {attr.name!r}")
                value = str(row[attr.name])
                try:
                    col[i] = lookup[value]
                except KeyError:
                    raise DatasetError(
                        f"row {i}: value {value!r} not in domain of {attr.name!r}"
                    ) from None
            tail_codes[attr.name] = col
        metric_name = self.schema.metric.name
        for i, row in enumerate(rows):
            if metric_name not in row:
                raise DatasetError(f"row {i}: record missing metric {metric_name!r}")
        tail_metric = np.array(
            [float(row[metric_name]) for row in rows],  # type: ignore[arg-type]
            dtype=np.float64,
        )
        if not np.all(np.isfinite(tail_metric)):
            raise DatasetError("metric column contains non-finite values")
        tail_ids = np.arange(next_id, next_id + k, dtype=np.int64)

        out = Dataset.__new__(Dataset)
        out.schema = self.schema
        out._codes = {
            name: np.concatenate([self._codes[name], tail_codes[name]])
            for name in self._codes
        }
        out._metric = np.concatenate([self._metric, tail_metric])
        out._ids = np.concatenate([self._ids, tail_ids])
        tail_map = {int(rid): old_n + i for i, rid in enumerate(tail_ids)}
        base_map = self._id_to_pos
        if isinstance(base_map, ChainMap):
            if len(base_map.maps) >= self._ID_MAP_MAX_DEPTH:
                flat = dict(base_map)
                flat.update(tail_map)
                out._id_to_pos = flat
            else:
                out._id_to_pos = ChainMap(tail_map, *base_map.maps)
        else:
            out._id_to_pos = ChainMap(tail_map, base_map)
        out._id_ceiling = next_id + k
        if self._record_bits_cache is not None:
            tail_bits = np.zeros(k, dtype=np.object_)
            for off, attr in zip(self.schema.offsets, self.schema.attributes):
                shifts = np.array(
                    [1 << (off + j) for j in range(len(attr))], dtype=np.object_
                )
                tail_bits = tail_bits | shifts[tail_codes[attr.name]]
            out._record_bits_cache = np.concatenate(
                [self._record_bits_cache, tail_bits]
            )
        else:
            out._record_bits_cache = None
        return out

    # ------------------------------------------------------------------- misc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset(n={len(self)}, attrs="
            f"{[a.name for a in self.schema.attributes]}, "
            f"metric={self.schema.metric.name!r})"
        )

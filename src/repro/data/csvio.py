"""CSV import/export for datasets.

Kept dependency-free (stdlib ``csv``) so users can round-trip real data —
e.g. the actual Ontario sunshine list — into :class:`repro.data.Dataset`
without pandas.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.data.table import Dataset
from repro.exceptions import DatasetError
from repro.schema import CategoricalAttribute, MetricAttribute, Schema

PathLike = Union[str, Path]


def write_csv(dataset: Dataset, path: PathLike) -> None:
    """Write a dataset (categoricals + metric + stable id) to CSV."""
    path = Path(path)
    fieldnames = (
        ["_id"]
        + [a.name for a in dataset.schema.attributes]
        + [dataset.schema.metric.name]
    )
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for rid, row in dataset.iter_records():
            row_out: Dict[str, object] = {"_id": rid}
            row_out.update(row)
            writer.writerow(row_out)


def read_csv(
    path: PathLike,
    schema: Optional[Schema] = None,
    metric: Optional[str] = None,
    attributes: Optional[Sequence[str]] = None,
) -> Dataset:
    """Read a dataset from CSV.

    If ``schema`` is omitted, one is inferred: ``metric`` names the numeric
    column, ``attributes`` (default: every non-metric, non-``_id`` column)
    become categorical attributes whose domains are the observed values in
    sorted order.  Inferred domains cover only observed values; for the
    privacy guarantees of Section 4, prefer passing an explicit schema whose
    domains include plausible-but-absent values.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise DatasetError(f"{path} has no header row")
        rows = list(reader)
    if not rows:
        raise DatasetError(f"{path} contains no data rows")

    if schema is None:
        if metric is None:
            raise DatasetError("read_csv needs either a schema or a metric name")
        if metric not in rows[0]:
            raise DatasetError(f"metric column {metric!r} not found in {path}")
        if attributes is None:
            attributes = [
                c for c in reader.fieldnames if c not in {metric, "_id"}
            ]
        attrs: List[CategoricalAttribute] = []
        for name in attributes:
            if name not in rows[0]:
                raise DatasetError(f"attribute column {name!r} not found in {path}")
            domain = sorted({row[name] for row in rows})
            attrs.append(CategoricalAttribute(name, domain))
        schema = Schema(attributes=attrs, metric=MetricAttribute(metric))

    ids: Optional[List[int]] = None
    if "_id" in rows[0]:
        ids = [int(row["_id"]) for row in rows]

    columns = {
        attr.name: [row[attr.name] for row in rows] for attr in schema.attributes
    }
    try:
        metric_values = [float(row[schema.metric.name]) for row in rows]
    except (KeyError, ValueError) as exc:
        raise DatasetError(f"bad metric column in {path}: {exc}") from exc
    return Dataset(schema, columns, metric_values, ids=ids)

"""Attribute definitions for the relational schema of Section 3.

The paper models a relation ``R`` with categorical attributes
``A_1 .. A_m`` and a numeric *metric* attribute ``M`` (e.g. ``Salary``)
against which outlierness is judged.  A predicate ``P_ij`` selects the
``j``-th value in the domain of ``A_i``.

A crucial privacy detail (Section 4): the domain of an attribute is declared
up front and may contain values that never occur in a particular dataset
instance.  Enumerating over the *declared* domain — not the observed values —
is what prevents a released context from revealing exactly which attribute
values are present in the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class CategoricalAttribute:
    """A categorical attribute with an explicit, ordered domain.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    domain:
        Ordered tuple of distinct values the attribute may take.  The order
        fixes the bit layout of context vectors, so it must be stable.
    """

    name: str
    domain: Tuple[str, ...]

    def __init__(self, name: str, domain: Sequence[str]):
        if not name:
            raise SchemaError("attribute name must be non-empty")
        values = tuple(str(v) for v in domain)
        if not values:
            raise SchemaError(f"attribute {name!r} has an empty domain")
        if len(set(values)) != len(values):
            raise SchemaError(f"attribute {name!r} has duplicate domain values")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "domain", values)

    def __len__(self) -> int:
        return len(self.domain)

    def index_of(self, value: str) -> int:
        """Position of ``value`` in the domain (raises ``SchemaError`` if absent)."""
        try:
            return self.domain.index(str(value))
        except ValueError:
            raise SchemaError(
                f"value {value!r} not in domain of attribute {self.name!r}"
            ) from None

    def __contains__(self, value: object) -> bool:
        return str(value) in self.domain


@dataclass(frozen=True)
class MetricAttribute:
    """The numeric metric attribute ``M`` outlierness is measured against."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("metric attribute name must be non-empty")


@dataclass(frozen=True)
class Predicate:
    """A single predicate ``P_ij``: ``attribute = value``.

    ``attr_index`` and ``value_index`` locate the predicate inside the
    schema's flattened bit layout; ``bit`` is its global bit position in a
    context vector.
    """

    attribute: str
    value: str
    attr_index: int
    value_index: int
    bit: int = field(compare=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.attribute} = {self.value}]"

"""Relational schema: categorical attributes, metric attribute, predicates."""

from repro.schema.attribute import CategoricalAttribute, MetricAttribute, Predicate
from repro.schema.relation import Schema

__all__ = [
    "CategoricalAttribute",
    "MetricAttribute",
    "Predicate",
    "Schema",
]

"""The relational schema ``R`` of Section 3.

A :class:`Schema` holds the ordered categorical attributes ``A_1..A_m`` plus
the metric attribute ``M`` and owns the *bit layout* shared by every context
vector: bit positions ``offset(i) .. offset(i) + |A_i| - 1`` correspond to
the domain values of attribute ``A_i``, giving context vectors of total
length ``t = sum(|A_i|)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.exceptions import SchemaError
from repro.schema.attribute import CategoricalAttribute, MetricAttribute, Predicate


@dataclass(frozen=True)
class Schema:
    """Ordered categorical attributes plus one numeric metric attribute.

    Examples
    --------
    >>> schema = Schema(
    ...     attributes=[
    ...         CategoricalAttribute("Jobtitle", ["CEO", "MedicalDoctor", "Lawyer"]),
    ...         CategoricalAttribute("City", ["Montreal", "Ottawa", "Toronto"]),
    ...     ],
    ...     metric=MetricAttribute("Salary"),
    ... )
    >>> schema.t
    6
    """

    attributes: Tuple[CategoricalAttribute, ...]
    metric: MetricAttribute

    def __init__(
        self,
        attributes: Sequence[CategoricalAttribute],
        metric: MetricAttribute | str,
    ):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("schema needs at least one categorical attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if isinstance(metric, str):
            metric = MetricAttribute(metric)
        if metric.name in names:
            raise SchemaError(
                f"metric attribute {metric.name!r} collides with a categorical attribute"
            )
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "metric", metric)

    # ------------------------------------------------------------------ layout

    @property
    def m(self) -> int:
        """Number of categorical attributes."""
        return len(self.attributes)

    @property
    def t(self) -> int:
        """Total number of attribute values: the context vector length."""
        return sum(len(a) for a in self.attributes)

    @property
    def offsets(self) -> Tuple[int, ...]:
        """Starting bit of each attribute block."""
        offs: List[int] = []
        acc = 0
        for attr in self.attributes:
            offs.append(acc)
            acc += len(attr)
        return tuple(offs)

    @property
    def block_masks(self) -> Tuple[int, ...]:
        """Per-attribute bitmasks over the ``t``-bit context layout."""
        masks: List[int] = []
        for off, attr in zip(self.offsets, self.attributes):
            masks.append(((1 << len(attr)) - 1) << off)
        return tuple(masks)

    @property
    def full_bits(self) -> int:
        """Bitmask with every predicate selected (the whole-domain context)."""
        return (1 << self.t) - 1

    # --------------------------------------------------------------- accessors

    def attribute(self, name: str) -> CategoricalAttribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute named {name!r} in schema")

    def attribute_index(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"no attribute named {name!r} in schema")

    def bit_for(self, attribute: str, value: str) -> int:
        """Global bit position of predicate ``attribute = value``."""
        i = self.attribute_index(attribute)
        j = self.attributes[i].index_of(value)
        return self.offsets[i] + j

    def predicate_at(self, bit: int) -> Predicate:
        """The :class:`Predicate` living at global bit position ``bit``."""
        if not 0 <= bit < self.t:
            raise SchemaError(f"bit {bit} out of range for t={self.t}")
        for i, (off, attr) in enumerate(zip(self.offsets, self.attributes)):
            if off <= bit < off + len(attr):
                j = bit - off
                return Predicate(
                    attribute=attr.name,
                    value=attr.domain[j],
                    attr_index=i,
                    value_index=j,
                    bit=bit,
                )
        raise SchemaError(f"bit {bit} not mapped (internal error)")  # pragma: no cover

    def predicates(self) -> Iterator[Predicate]:
        """Iterate over all ``t`` predicates in bit order."""
        for bit in range(self.t):
            yield self.predicate_at(bit)

    def attribute_of_bit(self, bit: int) -> int:
        """Index of the attribute that owns global bit ``bit``."""
        if not 0 <= bit < self.t:
            raise SchemaError(f"bit {bit} out of range for t={self.t}")
        for i, (off, attr) in enumerate(zip(self.offsets, self.attributes)):
            if off <= bit < off + len(attr):
                return i
        raise SchemaError(f"bit {bit} not mapped (internal error)")  # pragma: no cover

    # ----------------------------------------------------------------- records

    def record_bits(self, record: Mapping[str, str]) -> int:
        """Bitmask of the ``m`` predicates matching ``record``'s values.

        This is the *exact context* of the record: the smallest context that
        can still contain it.  A context ``C`` contains the record iff
        ``record_bits & C == record_bits`` restricted per attribute — since
        each record has exactly one value per attribute, plain superset
        testing suffices.
        """
        bits = 0
        for attr in self.attributes:
            if attr.name not in record:
                raise SchemaError(f"record missing attribute {attr.name!r}")
            bits |= 1 << self.bit_for(attr.name, record[attr.name])
        return bits

    # ------------------------------------------------------------------- misc

    def describe(self) -> str:
        """Human-readable one-line-per-attribute schema description."""
        lines = [
            f"{attr.name}({len(attr)}): {', '.join(attr.domain)}"
            for attr in self.attributes
        ]
        lines.append(f"metric: {self.metric.name}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "attributes": [
                {"name": a.name, "domain": list(a.domain)} for a in self.attributes
            ],
            "metric": self.metric.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Schema":
        attrs = [
            CategoricalAttribute(spec["name"], spec["domain"])
            for spec in payload["attributes"]  # type: ignore[index]
        ]
        return cls(attributes=attrs, metric=str(payload["metric"]))

"""ASCII rendering of tables and histograms.

The benchmark harness prints the same rows the paper's tables report and an
ASCII version of the appendix histograms, so every experiment's output is
readable straight from the terminal or a CI log.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.experiments.stats import histogram_series


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Fixed-width ASCII table with a title rule and optional footnote."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    rule = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * max(len(title), len(rule))]
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(row) for row in str_rows)
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    value_range: Tuple[float, float] | None = None,
    label: str = "",
) -> str:
    """ASCII bar-chart histogram (the appendix figures, terminal edition)."""
    counts, edges = histogram_series(values, bins=bins, value_range=value_range)
    peak = int(counts.max()) if counts.size else 0
    lines = []
    if label:
        lines.append(label)
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(width * int(count) / peak))
        lines.append(
            f"  [{edges[i]:>10.4g}, {edges[i + 1]:>10.4g}) "
            f"{str(int(count)).rjust(5)} {bar}"
        )
    arr = np.asarray(values, dtype=np.float64)
    lines.append(
        f"  n={arr.size} mean={arr.mean():.4g} min={arr.min():.4g} max={arr.max():.4g}"
    )
    return "\n".join(lines)

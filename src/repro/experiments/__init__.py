"""Experiment harness reproducing every table and figure of Section 6."""

from repro.experiments.ablations import (
    mechanism_parameterisation_ablation,
    random_walk_restart_ablation,
    starting_context_ablation,
)
from repro.experiments.coe_match import coe_match_for_detector, table_12, table_13
from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.figures import FIGURE_RUNNERS, FigureResult, figure_1, figure_2, figure_3, figure_4, figure_5
from repro.experiments.harness import (
    RepetitionResult,
    RunSummary,
    Workbench,
    run_direct_experiment,
    run_pcor_experiment,
)
from repro.experiments.locality import locality_experiment, locality_table
from repro.experiments.privacy_ratio import privacy_ratio_experiment
from repro.experiments.reporting import render_histogram, render_table
from repro.experiments.stats import RuntimeSummary, UtilitySummary, summarize_runtimes, summarize_utilities
from repro.experiments.tables import (
    TABLE_RUNNERS,
    TableResult,
    table_2_3,
    table_4_5,
    table_6_7,
    table_8_9,
    table_10_11,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "Workbench",
    "RepetitionResult",
    "RunSummary",
    "run_pcor_experiment",
    "run_direct_experiment",
    "UtilitySummary",
    "RuntimeSummary",
    "summarize_utilities",
    "summarize_runtimes",
    "render_table",
    "render_histogram",
    "TableResult",
    "TABLE_RUNNERS",
    "table_2_3",
    "table_4_5",
    "table_6_7",
    "table_8_9",
    "table_10_11",
    "table_12",
    "table_13",
    "coe_match_for_detector",
    "FigureResult",
    "FIGURE_RUNNERS",
    "figure_1",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "privacy_ratio_experiment",
    "locality_experiment",
    "locality_table",
    "starting_context_ablation",
    "random_walk_restart_ablation",
    "mechanism_parameterisation_ablation",
]

"""Shared machinery for the Section 6 experiments.

A :class:`Workbench` bundles a dataset, a detector and the reference file
(Section 6.2) and is memoised in-process, since reference builds are the
expensive part of every utility-ratio experiment.  Each repetition of an
experiment runs against a *fresh* verifier (empty profile cache, shared
bitmap index) so measured runtimes reflect what a standalone PCOR run would
cost — sharing the cache across repetitions would flatten precisely the
runtime differences Tables 2, 4, 6, 8 and 10 exist to show.

Utility is reported as the paper does: the ratio of the released context's
utility to the maximum utility among the record's matching contexts, read
from the reference file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pcor import PCOR
from repro.core.reference import ReferenceFile
from repro.core.sampling import Sampler
from repro.core.sampling import make_sampler as _registry_make_sampler
from repro.core.starting import starting_context_from_reference
from repro.core.utility import OverlapUtility, make_utility
from repro.core.verification import OutlierVerifier
from repro.data.generators import (
    homicide_reduced,
    salary_reduced,
    synthetic_homicide_dataset,
    synthetic_salary_dataset,
)
from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.exceptions import ExperimentError, SamplingError
from repro.experiments.stats import RuntimeSummary, UtilitySummary, summarize_runtimes, summarize_utilities
from repro.outliers.base import make_detector
from repro.rng import RngLike, ensure_rng, spawn

# --------------------------------------------------------------- dataset zoo

DATASET_FACTORIES: Dict[str, Callable[..., Dataset]] = {
    "salary_reduced": salary_reduced,
    "homicide_reduced": homicide_reduced,
    "salary_full": synthetic_salary_dataset,
    "homicide_full": synthetic_homicide_dataset,
}

def make_sampler(name: str, n_samples: int) -> Sampler:
    """Instantiate a sampler by registry name (experiment-flavoured errors)."""
    try:
        return _registry_make_sampler(name, n_samples=n_samples)
    except SamplingError as exc:
        raise ExperimentError(str(exc)) from None


# ----------------------------------------------------------------- workbench


class Workbench:
    """Dataset + detector + reference file, memoised per configuration."""

    _CACHE: Dict[Tuple, "Workbench"] = {}

    def __init__(
        self,
        dataset: Dataset,
        detector_name: str,
        detector_kwargs: Optional[Dict] = None,
    ):
        self.dataset = dataset
        self.detector_name = detector_name
        self.detector_kwargs = dict(detector_kwargs or {})
        self.detector = make_detector(detector_name, **self.detector_kwargs)
        self.mask_index = PredicateMaskIndex(dataset)
        self.reference_verifier = OutlierVerifier(
            dataset, self.detector, self.mask_index
        )
        self.reference = ReferenceFile.build(self.reference_verifier)

    # ------------------------------------------------------------ memoisation

    @classmethod
    def get(
        cls,
        dataset_name: str,
        n_records: int,
        seed: int,
        detector_name: str,
        detector_kwargs: Optional[Dict] = None,
    ) -> "Workbench":
        """Build (or fetch) the workbench for this configuration."""
        kwargs = dict(detector_kwargs or {})
        key = (
            dataset_name,
            int(n_records),
            int(seed),
            detector_name,
            tuple(sorted(kwargs.items())),
        )
        bench = cls._CACHE.get(key)
        if bench is None:
            try:
                factory = DATASET_FACTORIES[dataset_name]
            except KeyError:
                raise ExperimentError(
                    f"unknown dataset {dataset_name!r}; "
                    f"available: {sorted(DATASET_FACTORIES)}"
                ) from None
            dataset = factory(n_records=n_records, seed=seed)
            bench = cls(dataset, detector_name, kwargs)
            cls._CACHE[key] = bench
        return bench

    @classmethod
    def clear_cache(cls) -> None:
        cls._CACHE.clear()

    # -------------------------------------------------------------- utilities

    def fresh_verifier(self) -> OutlierVerifier:
        """A verifier with an empty profile cache (shared bitmap index)."""
        return OutlierVerifier(self.dataset, self.detector, self.mask_index)

    def pick_outliers(
        self,
        n: int,
        rng: RngLike = None,
        min_matching_contexts: int = 20,
    ) -> List[int]:
        """Random outlier records with a non-trivial set of matching contexts.

        The paper evaluates "random outliers"; requiring a floor on
        ``|COE_M(D, V)|`` keeps rejection-based samplers runnable at bench
        scale and reproduces the paper's large-COE regime (see
        EXPERIMENTS.md).  If no record meets the floor — possible on very
        small smoke datasets — the floor is halved until some do, so tiny
        configurations degrade gracefully instead of erroring.
        """
        gen = ensure_rng(rng)
        floor = max(1, int(min_matching_contexts))
        while True:
            eligible = [
                rid
                for rid in self.reference.outlier_records()
                if len(self.reference.matching_contexts(rid)) >= floor
            ]
            if eligible or floor <= 1:
                break
            floor //= 2
        if not eligible:
            raise ExperimentError(
                "dataset contains no contextual outliers at all; "
                "enlarge it or raise the anomaly fraction"
            )
        if n >= len(eligible):
            return eligible
        picks = gen.choice(len(eligible), size=n, replace=False)
        return [eligible[int(i)] for i in picks]


# ----------------------------------------------------------------- summaries


@dataclass
class RepetitionResult:
    """One repetition: released utility ratio and cost."""

    record_id: int
    utility_value: float
    max_utility: float
    utility_ratio: float
    wall_time_s: float
    fm_evaluations: int
    contexts_examined: int


@dataclass
class RunSummary:
    """All repetitions of one experiment configuration."""

    label: str
    algorithm: str
    detector: str
    utility: str
    epsilon: float
    n_samples: int
    repetitions: List[RepetitionResult] = field(default_factory=list)

    @property
    def utility_ratios(self) -> List[float]:
        return [r.utility_ratio for r in self.repetitions]

    @property
    def wall_times(self) -> List[float]:
        return [r.wall_time_s for r in self.repetitions]

    @property
    def fm_counts(self) -> List[int]:
        return [r.fm_evaluations for r in self.repetitions]

    def utility_summary(self, confidence: float = 0.90) -> UtilitySummary:
        return summarize_utilities(self.utility_ratios, confidence)

    def runtime_summary(self) -> RuntimeSummary:
        return summarize_runtimes(self.wall_times)

    def mean_fm_evaluations(self) -> float:
        return float(np.mean(self.fm_counts)) if self.repetitions else 0.0


# ------------------------------------------------------------------- running


def run_pcor_experiment(
    bench: Workbench,
    sampler_name: str,
    utility_name: str = "population_size",
    epsilon: float = 0.2,
    n_samples: int = 50,
    repetitions: int = 25,
    n_outlier_records: int = 12,
    rng: RngLike = None,
    label: Optional[str] = None,
    half_sensitivity: bool = False,
    min_matching_contexts: int = 100,
) -> RunSummary:
    """Repeat PCOR releases and collect utility ratios + runtimes.

    Per repetition: pick an outlier (cycling through a fixed random pool, as
    the paper repeats each experiment over random outliers), pick a random
    matching starting context from the reference, run one release on a fresh
    verifier, and normalise the released utility by the reference maximum.

    ``min_matching_contexts`` restricts the outlier pool to records whose
    ``COE_M`` is reasonably large.  At the paper's scale (t = 25, 51k
    records) every evaluated outlier implicitly lives in that regime — its
    uniform sampler collected 50 matching draws from a 2^25 space, so COE
    sizes were enormous; the floor reproduces the same regime at laptop
    scale (see EXPERIMENTS.md).
    """
    gen = ensure_rng(rng)
    outliers = bench.pick_outliers(n_outlier_records, gen, min_matching_contexts)
    rep_rngs = spawn(gen, repetitions)

    summary = RunSummary(
        label=label or f"{sampler_name}/{utility_name}",
        algorithm=sampler_name,
        detector=bench.detector_name,
        utility=utility_name,
        epsilon=epsilon,
        n_samples=n_samples,
    )

    for i in range(repetitions):
        rep_rng = rep_rngs[i]
        record_id = outliers[i % len(outliers)]
        starting = starting_context_from_reference(
            bench.reference, record_id, rep_rng
        )

        verifier = bench.fresh_verifier()
        sampler = make_sampler(sampler_name, n_samples)
        pcor = PCOR(
            bench.dataset,
            bench.detector,
            utility=utility_name,
            epsilon=epsilon,
            sampler=sampler,
            half_sensitivity=half_sensitivity,
            verifier=verifier,
        )
        t0 = time.perf_counter()
        result = pcor.release(record_id, starting_context=starting, seed=rep_rng)
        elapsed = time.perf_counter() - t0

        max_utility = _max_utility(
            bench, utility_name, record_id, starting.bits, verifier
        )
        ratio = result.utility_value / max_utility if max_utility > 0 else 1.0
        summary.repetitions.append(
            RepetitionResult(
                record_id=record_id,
                utility_value=result.utility_value,
                max_utility=max_utility,
                utility_ratio=ratio,
                wall_time_s=elapsed,
                fm_evaluations=result.fm_evaluations,
                contexts_examined=result.stats.contexts_examined,
            )
        )
    return summary


def _max_utility(
    bench: Workbench,
    utility_name: str,
    record_id: int,
    starting_bits: int,
    verifier: OutlierVerifier,
) -> float:
    """Maximum achievable utility for the repetition's normalisation."""
    if utility_name == "population_size":
        return bench.reference.max_population_utility(record_id)
    # Starting-context-relative utilities: score all matching contexts.
    utility = make_utility(
        utility_name, bench.reference_verifier, record_id, starting_bits
    )
    return bench.reference.max_utility(record_id, utility)


def run_direct_experiment(
    bench: Workbench,
    utility_name: str = "population_size",
    epsilon: float = 0.2,
    repetitions: int = 5,
    n_outlier_records: int = 5,
    rng: RngLike = None,
) -> RunSummary:
    """The direct approach (Algorithm 1) under the same protocol.

    Kept separate because its cost profile is enumeration-dominated; used by
    the headline-claim benchmark (direct vs BFS runtime ratio).
    """
    from repro.core.direct import DirectPCOR  # local import avoids cycle

    gen = ensure_rng(rng)
    outliers = bench.pick_outliers(n_outlier_records, gen)
    rep_rngs = spawn(gen, repetitions)

    summary = RunSummary(
        label=f"direct/{utility_name}",
        algorithm="direct",
        detector=bench.detector_name,
        utility=utility_name,
        epsilon=epsilon,
        n_samples=0,
    )
    for i in range(repetitions):
        rep_rng = rep_rngs[i]
        record_id = outliers[i % len(outliers)]
        starting = starting_context_from_reference(
            bench.reference, record_id, rep_rng
        )
        verifier = bench.fresh_verifier()
        direct = DirectPCOR(verifier, epsilon=epsilon)
        utility = make_utility(utility_name, verifier, record_id, starting.bits)
        t0 = time.perf_counter()
        result = direct.release(utility, record_id, rng=rep_rng)
        elapsed = time.perf_counter() - t0
        max_utility = _max_utility(
            bench, utility_name, record_id, starting.bits, verifier
        )
        ratio = result.utility_value / max_utility if max_utility > 0 else 1.0
        summary.repetitions.append(
            RepetitionResult(
                record_id=record_id,
                utility_value=result.utility_value,
                max_utility=max_utility,
                utility_ratio=ratio,
                wall_time_s=elapsed,
                fm_evaluations=result.fm_evaluations,
                contexts_examined=result.stats.contexts_examined,
            )
        )
    return summary

"""Tables 12 & 13 — COE match between a dataset and its neighbours (§6.7).

OCDP's constraint is ``COE_M(D1, V) = COE_M(D2, V)``; this experiment
measures how often it actually holds.  For each group-privacy distance
``Delta-D`` we draw random neighbouring datasets (removing ``Delta-D``
records, never the queried outliers), rebuild the full context reference on
the neighbour, and report the mean set-match between ``COE_M(D, V)`` and
``COE_M(D', V)`` over random outliers — quantified as Jaccard similarity,
expressed as a percentage like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.reference import ReferenceFile
from repro.core.verification import OutlierVerifier
from repro.data.neighbors import remove_random_records
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import Workbench
from repro.experiments.reporting import render_table
from repro.experiments.tables import DETECTOR_KWARGS, TableResult
from repro.mechanisms.ocdp import set_match_fraction
from repro.rng import RngLike, ensure_rng, spawn


@dataclass
class COEMatchResult:
    """Match percentages per detector per Delta-D."""

    dataset_name: str
    deltas: Sequence[int]
    #: detector -> list of mean match fractions aligned with ``deltas``.
    match_by_detector: Dict[str, List[float]] = field(default_factory=dict)

    def to_table(self, table_id: str, notes: str = "") -> TableResult:
        headers = ["Algorithm"] + [f"dD = {d}" for d in self.deltas]
        rows = []
        for detector, fractions in self.match_by_detector.items():
            rows.append([detector] + [f"{100 * f:.1f}%" for f in fractions])
        title = f"COE Match - {self.dataset_name}"
        return TableResult(table_id, title, headers, rows, notes)


def coe_match_for_detector(
    bench: Workbench,
    deltas: Sequence[int],
    n_neighbors: int,
    n_outliers: int,
    rng: RngLike = None,
) -> List[float]:
    """Mean COE match fraction per Delta-D for one dataset + detector."""
    gen = ensure_rng(rng)
    outliers = bench.pick_outliers(n_outliers, gen, min_matching_contexts=1)
    fractions: List[float] = []
    for delta in deltas:
        neighbor_rngs = spawn(gen, n_neighbors)
        per_neighbor: List[float] = []
        for nb_rng in neighbor_rngs:
            neighbor = remove_random_records(
                bench.dataset, delta, nb_rng, protected_ids=outliers
            )
            nb_verifier = OutlierVerifier(neighbor, bench.detector)
            nb_reference = ReferenceFile.build(nb_verifier)
            matches = [
                set_match_fraction(
                    bench.reference.coe(rid), nb_reference.coe(rid)
                )
                for rid in outliers
            ]
            per_neighbor.append(float(np.mean(matches)))
        fractions.append(float(np.mean(per_neighbor)))
    return fractions


def table_12(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    deltas: Sequence[int] = (1, 5, 10, 25),
) -> TableResult:
    """COE match on the reduced salary dataset, three detectors."""
    return _coe_match_table(
        "12", "salary_reduced", "Salary dataset", scale, seed, deltas
    )


def table_13(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    deltas: Sequence[int] = (1, 5, 10, 25),
) -> TableResult:
    """COE match on the reduced homicide dataset, three detectors."""
    return _coe_match_table(
        "13", "homicide_reduced", "Homicide dataset", scale, seed, deltas
    )


def _coe_match_table(
    table_id: str,
    dataset_name: str,
    display_name: str,
    scale: str | ExperimentScale,
    seed: RngLike,
    deltas: Sequence[int],
) -> TableResult:
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    gen = ensure_rng(seed)
    n_records = (
        cfg.salary_reduced_records
        if dataset_name == "salary_reduced"
        else cfg.homicide_reduced_records
    )
    result = COEMatchResult(dataset_name=display_name, deltas=list(deltas))
    for det_label, det_name in [
        ("Grubbs", "grubbs"),
        ("LOF", "lof"),
        ("Histogram", "histogram"),
    ]:
        bench = Workbench.get(
            dataset_name, n_records, 7, det_name, DETECTOR_KWARGS[det_name]
        )
        result.match_by_detector[det_label] = coe_match_for_detector(
            bench, deltas, cfg.coe_neighbors, cfg.coe_outliers, gen
        )
    notes = (
        f"scale={cfg.name}: n={n_records} records, {cfg.coe_neighbors} "
        f"neighbours per dD, {cfg.coe_outliers} outliers; match = Jaccard "
        "similarity of COE sets (paper: 50 neighbours, 100 outliers)"
    )
    return result.to_table(table_id, notes)

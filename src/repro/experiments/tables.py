"""Regeneration of Tables 2-11 (Section 6.3-6.6).

Every public function returns :class:`TableResult` objects whose rows mirror
the paper's columns; ``render()`` prints them as ASCII.  Experiments run at
a named scale (see :mod:`repro.experiments.config`) — `small` is the bench
default, `paper` reproduces the original record counts and 200 repetitions.

A hardware-independent cost column (mean uncached detector runs, ``f_M``)
is added to every performance table: wall-clock at laptop scale is noisy,
but the detector-run counts directly expose the complexity separation the
paper's runtime tables demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import RunSummary, Workbench, run_pcor_experiment
from repro.experiments.reporting import render_table
from repro.rng import RngLike, ensure_rng


def _row_seed(seed: RngLike) -> int:
    """A fixed seed shared by every row of one table.

    Each row (sampler / detector / epsilon / n) runs with its own fresh
    ``default_rng(_row_seed(seed))``, so all rows see the SAME outlier pool,
    starting contexts and repetition streams — a paired comparison, which is
    what the paper's per-configuration tables imply.
    """
    return int(ensure_rng(seed).integers(0, 2**63 - 1))

#: Detector parameters used throughout the evaluation.  The histogram floor
#: of 2 records keeps the paper's sparse-bin rule meaningful at laptop-scale
#: populations (see the module docstring of repro.outliers.histogram).
DETECTOR_KWARGS: Dict[str, Dict] = {
    "lof": {"k": 10, "threshold": 1.5},
    "grubbs": {"alpha": 0.05},
    "histogram": {"frequency_fraction": 2.5e-3, "min_count_floor": 2.0},
}


@dataclass
class TableResult:
    """One regenerated paper table."""

    table_id: str
    title: str
    headers: List[str]
    rows: List[Sequence[object]]
    notes: str = ""
    summaries: Dict[str, RunSummary] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(
            f"Table {self.table_id}: {self.title}", self.headers, self.rows, self.notes
        )


# ----------------------------------------------------------- generic builder


def _performance_row(label: str, summary: RunSummary, trailer: Sequence[str]) -> List[str]:
    rt = summary.runtime_summary()
    return [label, *rt.as_row(), f"{summary.mean_fm_evaluations():.0f}", *trailer]


def _utility_row(label: str, summary: RunSummary, trailer: Sequence[str]) -> List[str]:
    us = summary.utility_summary()
    return [label, *us.as_row(), *trailer]


PERF_HEADERS = ["Algorithm", "Tmin", "Tmax", "Tavg", "f_M runs"]
UTIL_HEADERS = ["Algorithm", "Utility", "CI (90%)"]


def _paired_tables(
    perf_id: str,
    util_id: str,
    perf_title: str,
    util_title: str,
    summaries: Dict[str, RunSummary],
    trailer_fn,
    notes: str,
) -> Tuple[TableResult, TableResult]:
    perf_rows = [
        _performance_row(label, s, trailer_fn(s)) for label, s in summaries.items()
    ]
    util_rows = [
        _utility_row(label, s, trailer_fn(s)) for label, s in summaries.items()
    ]
    trailer_headers = ["epsilon", "Outlier"]
    perf = TableResult(
        perf_id,
        perf_title,
        PERF_HEADERS + trailer_headers,
        perf_rows,
        notes,
        summaries,
    )
    util = TableResult(
        util_id,
        util_title,
        UTIL_HEADERS + trailer_headers,
        util_rows,
        notes,
        summaries,
    )
    return perf, util


# -------------------------------------------------------------- Tables 2 & 3


def table_2_3(
    scale: str | ExperimentScale = "small", seed: RngLike = 0
) -> Tuple[TableResult, TableResult]:
    """Sampling-method comparison: performance (T2) and utility (T3).

    Uniform / RandomWalk / DFS / BFS with LOF, population-size utility,
    epsilon = 0.2, n = scale.n_samples.
    """
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for name, label in [
        ("uniform", "Uniform"),
        ("random_walk", "Random Walk"),
        ("dfs", "DFS"),
        ("bfs", "BFS"),
    ]:
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name=name,
            utility_name="population_size",
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    return _paired_tables(
        "2",
        "3",
        "Sampling Methods Comparison - Performance",
        "Sampling Methods Comparison - Utility",
        summaries,
        lambda s: [f"{s.epsilon:g}", "LOF"],
        f"scale={cfg.name}: salary dataset n={cfg.salary_records}, "
        f"{cfg.repetitions} repetitions, {cfg.n_samples} samples "
        "(paper: 51k records, 200 reps, n=50)",
    )


# -------------------------------------------------------------- Tables 4 & 5


def table_4_5(
    scale: str | ExperimentScale = "small", seed: RngLike = 0
) -> Tuple[TableResult, TableResult]:
    """Intersection-overlap utility: performance (T4) and utility (T5).

    DFS vs BFS under the overlap-with-starting-context utility, LOF,
    epsilon = 0.2.
    """
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for name, label in [("dfs", "DFS"), ("bfs", "BFS")]:
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name=name,
            utility_name="overlap",
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    return _paired_tables(
        "4",
        "5",
        "Intersection Overlap Utility - Performance",
        "Intersection Overlap Utility - Utility",
        summaries,
        lambda s: [f"{s.epsilon:g}", "LOF"],
        f"scale={cfg.name}: utility = |D_C intersect D_C_V|, "
        f"salary dataset n={cfg.salary_records}, {cfg.repetitions} repetitions",
    )


# -------------------------------------------------------------- Tables 6 & 7


def table_6_7(
    scale: str | ExperimentScale = "small", seed: RngLike = 0
) -> Tuple[TableResult, TableResult]:
    """Other detectors with BFS: performance (T6) and utility (T7).

    Grubbs and Histogram on the reduced salary dataset (paper: 11k records,
    14 attribute values), BFS sampling, population-size utility,
    epsilon = 0.2.
    """
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    summaries: Dict[str, RunSummary] = {}
    for det, label in [("grubbs", "Grubbs"), ("histogram", "Histogram")]:
        bench = Workbench.get(
            "salary_reduced",
            cfg.salary_reduced_records,
            7,
            det,
            DETECTOR_KWARGS[det],
        )
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name="bfs",
            utility_name="population_size",
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    perf_rows = [
        _performance_row(label, s, [f"{s.epsilon:g}", "BFS"])
        for label, s in summaries.items()
    ]
    util_rows = [
        _utility_row(label, s, [f"{s.epsilon:g}", "BFS"])
        for label, s in summaries.items()
    ]
    notes = (
        f"scale={cfg.name}: reduced salary dataset "
        f"n={cfg.salary_reduced_records}, 14 attribute values "
        "(paper: 11k records)"
    )
    perf = TableResult(
        "6",
        "Outlier Detection Algorithms - Performance",
        ["Algorithm", "Tmin", "Tmax", "Tavg", "f_M runs", "epsilon", "Sampling"],
        perf_rows,
        notes,
        summaries,
    )
    util = TableResult(
        "7",
        "Outlier Detection Algorithms - Utility",
        ["Algorithm", "Utility", "CI (90%)", "epsilon", "Sampling"],
        util_rows,
        notes,
        summaries,
    )
    return perf, util


# -------------------------------------------------------------- Tables 8 & 9


def table_8_9(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, 0.4),
) -> Tuple[TableResult, TableResult]:
    """Privacy-parameter sweep: performance (T8) and utility (T9).

    BFS + LOF, population-size utility, n = scale.n_samples.
    """
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for eps in epsilons:
        label = f"{eps:g}"
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name="bfs",
            utility_name="population_size",
            epsilon=eps,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    perf_rows = [
        [label, *s.runtime_summary().as_row(), f"{s.mean_fm_evaluations():.0f}", "BFS", "LOF"]
        for label, s in summaries.items()
    ]
    util_rows = [
        [label, *s.utility_summary().as_row(), "BFS", "LOF"]
        for label, s in summaries.items()
    ]
    notes = (
        f"scale={cfg.name}: n={cfg.n_samples} samples, salary dataset "
        f"n={cfg.salary_records}, {cfg.repetitions} repetitions"
    )
    perf = TableResult(
        "8",
        "Effect of privacy parameter on performance",
        ["epsilon", "Tmin", "Tmax", "Tavg", "f_M runs", "Sampling", "Outlier"],
        perf_rows,
        notes,
        summaries,
    )
    util = TableResult(
        "9",
        "Effect of privacy parameter on utility",
        ["epsilon", "Utility", "CI (90%)", "Sampling", "Outlier"],
        util_rows,
        notes,
        summaries,
    )
    return perf, util


# ------------------------------------------------------------ Tables 10 & 11


def table_10_11(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    sample_sizes: Sequence[int] = (25, 50, 100, 200),
) -> Tuple[TableResult, TableResult]:
    """Sample-count sweep: performance (T10) and utility (T11).

    BFS + LOF, population-size utility, epsilon = 0.2.
    """
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for n in sample_sizes:
        label = str(n)
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name="bfs",
            utility_name="population_size",
            epsilon=0.2,
            n_samples=n,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    perf_rows = [
        [label, *s.runtime_summary().as_row(), f"{s.mean_fm_evaluations():.0f}", "BFS", "LOF"]
        for label, s in summaries.items()
    ]
    util_rows = [
        [label, *s.utility_summary().as_row(), "BFS", "LOF"]
        for label, s in summaries.items()
    ]
    notes = (
        f"scale={cfg.name}: epsilon=0.2, salary dataset "
        f"n={cfg.salary_records}, {cfg.repetitions} repetitions; "
        "epsilon_1 = 0.2/(2n+2) shrinks as n grows"
    )
    perf = TableResult(
        "10",
        "Effect of # of samples on performance",
        ["# Samples", "Tmin", "Tmax", "Tavg", "f_M runs", "Sampling", "Outlier"],
        perf_rows,
        notes,
        summaries,
    )
    util = TableResult(
        "11",
        "Effect of # of samples on utility",
        ["# Samples", "Utility", "CI (90%)", "Sampling", "Outlier"],
        util_rows,
        notes,
        summaries,
    )
    return perf, util


#: Table id -> callable returning the (perf, util) pair that contains it.
TABLE_RUNNERS = {
    "2": table_2_3,
    "3": table_2_3,
    "4": table_4_5,
    "5": table_4_5,
    "6": table_6_7,
    "7": table_6_7,
    "8": table_8_9,
    "9": table_8_9,
    "10": table_10_11,
    "11": table_10_11,
}

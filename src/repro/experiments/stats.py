"""Statistics used by the evaluation (Section 6.2).

The paper reports, over 200 repetitions per configuration:

* utility as the mean ratio to the maximum achievable utility, with a 90%
  confidence interval, and
* performance as the (min, max, average) runtime.

The CI uses the normal approximation ``mean +- z * s / sqrt(n)``; at the
paper's repetition counts the difference from a t-interval is negligible,
but we use the t quantile anyway so small smoke-scale runs stay honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class UtilitySummary:
    """Mean utility ratio with a confidence interval."""

    mean: float
    ci_low: float
    ci_high: float
    n: int
    confidence: float

    def as_row(self) -> Tuple[str, str]:
        return (f"{self.mean:.2f}", f"({self.ci_low:.2f}, {self.ci_high:.2f})")


@dataclass(frozen=True)
class RuntimeSummary:
    """Min / max / average wall-clock runtime in seconds."""

    t_min: float
    t_max: float
    t_avg: float
    n: int

    def as_row(self) -> Tuple[str, str, str]:
        return (
            format_duration(self.t_min),
            format_duration(self.t_max),
            format_duration(self.t_avg),
        )


def summarize_utilities(
    ratios: Sequence[float], confidence: float = 0.90
) -> UtilitySummary:
    """Mean and t-interval of utility ratios (paper: 90% CI)."""
    arr = np.asarray(ratios, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty utility sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return UtilitySummary(mean, mean, mean, 1, confidence)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    tq = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, arr.size - 1))
    half = tq * sem
    return UtilitySummary(mean, mean - half, mean + half, int(arr.size), confidence)


def summarize_runtimes(times: Sequence[float]) -> RuntimeSummary:
    """Min / max / average of wall-clock times."""
    arr = np.asarray(times, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty runtime sample")
    return RuntimeSummary(
        t_min=float(arr.min()),
        t_max=float(arr.max()),
        t_avg=float(arr.mean()),
        n=int(arr.size),
    )


def format_duration(seconds: float) -> str:
    """Adaptive human-readable duration: us / ms / s / m."""
    if seconds < 0:
        raise ValueError(f"duration must be >= 0, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}m"


def histogram_series(
    values: Sequence[float],
    bins: int = 10,
    value_range: Tuple[float, float] | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(counts, edges)`` for the appendix-style histograms (Figures 1-5)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sample")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    return np.histogram(arr, bins=bins, range=value_range)

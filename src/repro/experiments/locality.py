"""The locality hypothesis (Section 5.2) — an ablation experiment.

The graph samplers rest on one empirical claim: *if V is an outlier in
context C, then a context connected to C is more likely to be matching than
a uniformly random context.*  The paper asserts the hypothesis holds for
all three detector categories but does not quantify it; this experiment
does, producing the match rate at each Hamming radius around known matching
contexts next to the global matching density (the rate a random context
would achieve).

A strong locality signal — radius-1 match rate far above the global
density — is what makes RandomWalk/DFS/BFS find candidates in O(t) steps
while uniform sampling needs O(2^t / N) draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.context.context import Context
from repro.context.graph import ContextGraph
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import Workbench
from repro.experiments.tables import DETECTOR_KWARGS, TableResult
from repro.rng import RngLike, ensure_rng


@dataclass
class LocalityResult:
    """Mean match rate per Hamming radius, plus the global baseline."""

    detector: str
    radii: List[int]
    match_rate_by_radius: List[float]
    global_density: float

    @property
    def locality_gain(self) -> float:
        """Radius-1 match rate over the global matching density."""
        if self.global_density == 0.0:
            return float("inf")
        return self.match_rate_by_radius[1] / self.global_density


def locality_experiment(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    detectors: Sequence[str] = ("grubbs", "lof", "histogram"),
    max_radius: int = 3,
    n_centers: int = 10,
) -> List[LocalityResult]:
    """Measure the locality profile for each detector on the salary data."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    gen = ensure_rng(seed)
    results: List[LocalityResult] = []
    for det_name in detectors:
        bench = Workbench.get(
            "salary_reduced",
            cfg.salary_reduced_records,
            7,
            det_name,
            DETECTOR_KWARGS[det_name],
        )
        graph = ContextGraph(bench.dataset.schema)
        space_size = 1 << bench.dataset.schema.t
        outliers = bench.pick_outliers(
            min(n_centers, cfg.n_outlier_records), gen, min_matching_contexts=5
        )

        profiles: List[List[float]] = []
        densities: List[float] = []
        for rid in outliers:
            matching = bench.reference.matching_contexts(rid)
            center_bits = matching[int(gen.integers(0, len(matching)))]
            center = Context(bench.dataset.schema, center_bits)
            matching_set = set(matching)
            profile = graph.locality_profile(
                lambda bits: bits in matching_set, center, max_radius
            )
            profiles.append(profile)
            densities.append(len(matching_set) / space_size)

        mean_profile = np.mean(np.asarray(profiles), axis=0)
        results.append(
            LocalityResult(
                detector=det_name,
                radii=list(range(max_radius + 1)),
                match_rate_by_radius=[float(x) for x in mean_profile],
                global_density=float(np.mean(densities)),
            )
        )
    return results


def locality_table(results: Sequence[LocalityResult]) -> TableResult:
    """Render locality results as an ASCII table."""
    radii = results[0].radii if results else []
    headers = (
        ["Detector"]
        + [f"match@r={r}" for r in radii]
        + ["global density", "r=1 gain"]
    )
    rows = []
    for res in results:
        rows.append(
            [res.detector]
            + [f"{x:.3f}" for x in res.match_rate_by_radius]
            + [f"{res.global_density:.4f}", f"{res.locality_gain:.1f}x"]
        )
    return TableResult(
        "locality",
        "Locality of matching contexts in the context graph (Section 5.2)",
        headers,
        rows,
        "match@r = probability that a context at Hamming distance r from a "
        "matching context is itself matching; gain = match@r=1 / global density",
    )

"""Figures 1-5 (appendix): utility and runtime distribution histograms.

The paper's appendix shows, for each configuration, the histogram of the
per-repetition utility ratios (range [0, 1], 1.0 = the direct approach's
accuracy) and of the per-repetition runtimes.  Each ``figure_N`` function
reuses the corresponding table experiment's repetitions and returns a
:class:`FigureResult` whose panels carry the raw series plus histogram
``(counts, edges)`` — exactly the data needed to redraw the paper's plots —
and renders them as ASCII bar charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import RunSummary, Workbench, run_pcor_experiment
from repro.experiments.reporting import render_histogram
from repro.experiments.stats import histogram_series
from repro.experiments.tables import DETECTOR_KWARGS, table_2_3, table_8_9, table_10_11
from repro.rng import RngLike, ensure_rng


@dataclass
class FigurePanel:
    """One histogram panel: (a), (b), ... of a paper figure."""

    label: str
    kind: str  # "utility" or "time"
    values: List[float]

    def histogram(self, bins: int = 10) -> Tuple[np.ndarray, np.ndarray]:
        value_range = (0.0, 1.0) if self.kind == "utility" else None
        return histogram_series(self.values, bins=bins, value_range=value_range)

    def render(self, bins: int = 10) -> str:
        value_range = (0.0, 1.0) if self.kind == "utility" else None
        return render_histogram(
            self.values, bins=bins, value_range=value_range, label=self.label
        )


@dataclass
class FigureResult:
    """A full paper figure: several labelled histogram panels."""

    figure_id: str
    title: str
    panels: List[FigurePanel] = field(default_factory=list)
    notes: str = ""

    def render(self, bins: int = 10) -> str:
        parts = [f"Figure {self.figure_id}: {self.title}", "=" * 60]
        for panel in self.panels:
            parts.append(panel.render(bins=bins))
            parts.append("")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _panels_from_summaries(
    summaries: Dict[str, RunSummary], kinds: Sequence[str] = ("utility", "time")
) -> List[FigurePanel]:
    panels: List[FigurePanel] = []
    if "utility" in kinds:
        for label, summary in summaries.items():
            panels.append(
                FigurePanel(f"{label} - Utility", "utility", summary.utility_ratios)
            )
    if "time" in kinds:
        for label, summary in summaries.items():
            panels.append(
                FigurePanel(f"{label} - Time (s)", "time", summary.wall_times)
            )
    return panels


# -------------------------------------------------------------------- figures


def figure_1(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    summaries: Optional[Dict[str, RunSummary]] = None,
) -> FigureResult:
    """Utility + runtime histograms for the four samplers (LOF, eps=0.2)."""
    if summaries is None:
        perf, _ = table_2_3(scale, seed)
        summaries = perf.summaries
    return FigureResult(
        "1",
        "Utility and Performance of PCORs for different sampling candidates "
        "(population-size utility, LOF, eps=0.2)",
        _panels_from_summaries(summaries),
    )


def figure_2(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    epsilon: float = 0.1,
) -> FigureResult:
    """DFS/BFS histograms under the overlap utility (paper caption: eps=0.1)."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    gen = ensure_rng(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for name, label in [("dfs", "DFS"), ("bfs", "BFS")]:
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name=name,
            utility_name="overlap",
            epsilon=epsilon,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=gen,
            label=label,
        )
    return FigureResult(
        "2",
        f"DFS/BFS under overlap-with-C_V utility (LOF, eps={epsilon:g})",
        _panels_from_summaries(summaries),
    )


def figure_3(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    epsilon: float = 0.1,
) -> FigureResult:
    """Grubbs/Histogram histograms with BFS (paper caption: eps=0.1)."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    gen = ensure_rng(seed)
    summaries: Dict[str, RunSummary] = {}
    for det, label in [("grubbs", "Grubbs"), ("histogram", "Histogram")]:
        bench = Workbench.get(
            "salary_reduced",
            cfg.salary_reduced_records,
            7,
            det,
            DETECTOR_KWARGS[det],
        )
        summaries[label] = run_pcor_experiment(
            bench,
            sampler_name="bfs",
            utility_name="population_size",
            epsilon=epsilon,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=gen,
            label=label,
        )
    return FigureResult(
        "3",
        f"Grubbs and Histogram detectors with BFS sampling (eps={epsilon:g})",
        _panels_from_summaries(summaries),
    )


def figure_4(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    summaries: Optional[Dict[str, RunSummary]] = None,
) -> FigureResult:
    """Privacy-parameter sweep histograms (BFS + LOF)."""
    if summaries is None:
        perf, _ = table_8_9(scale, seed)
        summaries = perf.summaries
    labeled = {f"eps={k}": v for k, v in summaries.items()}
    return FigureResult(
        "4",
        "Effect of the privacy parameter (BFS sampling, LOF)",
        _panels_from_summaries(labeled),
    )


def figure_5(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    summaries: Optional[Dict[str, RunSummary]] = None,
) -> FigureResult:
    """Sample-count sweep histograms (BFS + LOF, eps=0.2)."""
    if summaries is None:
        perf, _ = table_10_11(scale, seed)
        summaries = perf.summaries
    labeled = {f"n={k}": v for k, v in summaries.items()}
    return FigureResult(
        "5",
        "Effect of the number of samples (BFS sampling, LOF, eps=0.2)",
        _panels_from_summaries(labeled),
    )


FIGURE_RUNNERS = {
    "1": figure_1,
    "2": figure_2,
    "3": figure_3,
    "4": figure_4,
    "5": figure_5,
}

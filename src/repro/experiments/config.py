"""Experiment scales.

The paper ran on a 132-core / 1 TB machine with 51k-110k-record datasets and
200 repetitions; every table here regenerates on a laptop by scaling record
counts and repetitions down while keeping the schemas (and thus the context
spaces) identical.  The *shape* results — which algorithm wins, by what
factor, where the knees are — are scale-stable; EXPERIMENTS.md records the
measured numbers next to the paper's.

Scales
------
* ``smoke``  — seconds; used by the test suite.
* ``small``  — the default for ``pytest benchmarks/`` (a few minutes total).
* ``medium`` — closer statistics (tens of minutes).
* ``paper``  — the paper's record counts and 200 repetitions (hours; needs
  patience, not hardware).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiments at one scale."""

    name: str
    #: Records in the salary dataset (tables 2-11 and figures).
    salary_records: int
    #: Records in the reduced salary dataset (tables 6/7, 12).
    salary_reduced_records: int
    #: Records in the reduced homicide dataset (table 13).
    homicide_reduced_records: int
    #: Repetitions per configuration (paper: 200).
    repetitions: int
    #: Distinct outlier records cycled through (paper: random outliers).
    n_outlier_records: int
    #: Samples per sampler run unless the experiment overrides (paper: 50).
    n_samples: int
    #: Neighbouring datasets per Delta-D in the COE-match experiment.
    coe_neighbors: int
    #: Outlier records examined per neighbour in the COE-match experiment.
    coe_outliers: int


SCALES = {
    "smoke": ExperimentScale(
        name="smoke",
        salary_records=400,
        salary_reduced_records=400,
        homicide_reduced_records=400,
        repetitions=5,
        n_outlier_records=5,
        n_samples=10,
        coe_neighbors=2,
        coe_outliers=5,
    ),
    "small": ExperimentScale(
        name="small",
        salary_records=6000,
        salary_reduced_records=3000,
        homicide_reduced_records=4000,
        repetitions=20,
        n_outlier_records=10,
        n_samples=50,
        coe_neighbors=3,
        coe_outliers=15,
    ),
    "medium": ExperimentScale(
        name="medium",
        salary_records=11_000,
        salary_reduced_records=6000,
        homicide_reduced_records=9000,
        repetitions=60,
        n_outlier_records=25,
        n_samples=50,
        coe_neighbors=5,
        coe_outliers=30,
    ),
    "paper": ExperimentScale(
        name="paper",
        salary_records=51_000,
        salary_reduced_records=11_000,
        homicide_reduced_records=28_000,
        repetitions=200,
        n_outlier_records=100,
        n_samples=50,
        coe_neighbors=50,
        coe_outliers=100,
    ),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; available: {sorted(SCALES)}"
        ) from None

"""Ablations over PCOR's design choices (beyond the paper's sweeps).

Three choices the paper fixes implicitly are isolated here:

* **Starting-context quality** — the paper assumes "a valid starting
  context obtained through an initial search" without characterising it.
  How much does the released utility depend on whether that context is a
  poor (min-population), random, or ideal (max-population) seed?
* **Random-walk restarts** — Algorithm 3 stops when the walk is stuck; the
  `restart_on_stuck` extension jumps back to C_V instead (still
  data-independent, so Theorem 5.3 is unaffected).  Does it help?
* **Mechanism parameterisation** — the paper's proofs use weights
  ``exp(eps1*u)`` (costing ``2*eps1`` per draw); the textbook form
  ``exp(eps*u/2)`` buys the same total budget with twice the effective
  temperature.  The comparison quantifies what the convention costs.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.pcor import PCOR
from repro.core.sampling import BFSSampler, RandomWalkSampler
from repro.core.starting import starting_context_from_reference
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import RepetitionResult, RunSummary, Workbench
from repro.experiments.tables import DETECTOR_KWARGS, TableResult
from repro.experiments.tables import _row_seed
from repro.rng import RngLike, ensure_rng, spawn


def _run_variant(
    bench: Workbench,
    sampler_factory,
    starting_mode: str,
    epsilon: float,
    n_samples: int,
    repetitions: int,
    n_outlier_records: int,
    rng,
    label: str,
    half_sensitivity: bool = False,
) -> RunSummary:
    """One ablation arm under the shared repetition protocol."""
    gen = ensure_rng(rng)
    outliers = bench.pick_outliers(n_outlier_records, gen, min_matching_contexts=100)
    rep_rngs = spawn(gen, repetitions)
    summary = RunSummary(
        label=label,
        algorithm=label,
        detector=bench.detector_name,
        utility="population_size",
        epsilon=epsilon,
        n_samples=n_samples,
    )
    for i in range(repetitions):
        rep_rng = rep_rngs[i]
        record_id = outliers[i % len(outliers)]
        starting = starting_context_from_reference(
            bench.reference, record_id, rep_rng, mode=starting_mode
        )
        pcor = PCOR(
            bench.dataset,
            bench.detector,
            utility="population_size",
            epsilon=epsilon,
            sampler=sampler_factory(n_samples),
            half_sensitivity=half_sensitivity,
            verifier=bench.fresh_verifier(),
        )
        result = pcor.release(record_id, starting_context=starting, seed=rep_rng)
        max_utility = bench.reference.max_population_utility(record_id)
        summary.repetitions.append(
            RepetitionResult(
                record_id=record_id,
                utility_value=result.utility_value,
                max_utility=max_utility,
                utility_ratio=(
                    result.utility_value / max_utility if max_utility > 0 else 1.0
                ),
                wall_time_s=result.wall_time_s,
                fm_evaluations=result.fm_evaluations,
                contexts_examined=result.stats.contexts_examined,
            )
        )
    return summary


def starting_context_ablation(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    modes: Sequence[str] = ("min", "random", "max"),
) -> TableResult:
    """BFS utility as a function of starting-context quality."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for mode in modes:
        summaries[mode] = _run_variant(
            bench,
            lambda n: BFSSampler(n_samples=n),
            starting_mode=mode,
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=f"start={mode}",
        )
    rows = [
        [mode, *s.utility_summary().as_row(), f"{s.mean_fm_evaluations():.0f}"]
        for mode, s in summaries.items()
    ]
    return TableResult(
        "A1",
        "Ablation: starting-context quality (BFS, LOF, eps=0.2)",
        ["C_V mode", "Utility", "CI (90%)", "f_M runs"],
        rows,
        "min/max = worst/best-population matching context; random = the "
        "paper's implicit assumption",
        summaries,
    )


def random_walk_restart_ablation(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
) -> TableResult:
    """Algorithm 3 with and without restart-on-stuck."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for restart in (False, True):
        label = "restart" if restart else "paper (stop)"
        summaries[label] = _run_variant(
            bench,
            lambda n, r=restart: RandomWalkSampler(n_samples=n, restart_on_stuck=r),
            starting_mode="random",
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
        )
    rows = [
        [label, *s.utility_summary().as_row(), f"{s.mean_fm_evaluations():.0f}"]
        for label, s in summaries.items()
    ]
    return TableResult(
        "A2",
        "Ablation: random-walk restart-on-stuck (LOF, eps=0.2)",
        ["Variant", "Utility", "CI (90%)", "f_M runs"],
        rows,
        "restart keeps collecting after dead ends; data-independent, so the "
        "2*eps1 budget of Theorem 5.3 is unchanged",
        summaries,
    )


def mechanism_parameterisation_ablation(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
) -> TableResult:
    """Paper weights exp(eps1*u) vs textbook exp(eps*u/(2*Delta_u))."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    row_seed = _row_seed(seed)
    bench = Workbench.get(
        "salary_reduced", cfg.salary_records, 7, "lof", DETECTOR_KWARGS["lof"]
    )
    summaries: Dict[str, RunSummary] = {}
    for half, label in ((False, "paper exp(eps1*u)"), (True, "textbook exp(eps1*u/2)")):
        summaries[label] = _run_variant(
            bench,
            lambda n: BFSSampler(n_samples=n),
            starting_mode="random",
            epsilon=0.2,
            n_samples=cfg.n_samples,
            repetitions=cfg.repetitions,
            n_outlier_records=cfg.n_outlier_records,
            rng=np.random.default_rng(row_seed),
            label=label,
            half_sensitivity=half,
        )
    rows = [
        [label, *s.utility_summary().as_row()]
        for label, s in summaries.items()
    ]
    return TableResult(
        "A3",
        "Ablation: Exponential-mechanism parameterisation (BFS, LOF, eps=0.2)",
        ["Weights", "Utility", "CI (90%)"],
        rows,
        "the textbook form halves the weight scale at identical budget "
        "accounting, costing utility",
        summaries,
    )

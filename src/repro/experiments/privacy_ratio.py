"""Section 6.7, objective (ii): empirical privacy when the OCDP constraint fails.

When ``COE_M(D1, V) != COE_M(D2, V)`` for one-record neighbours, OCDP makes
no formal promise.  The paper measures, over the contexts in the
*intersection* of the two COE sets, the maximum ratio of the (direct,
Exponential-mechanism) selection probability under ``D1`` to the probability
of the same context under ``D2`` — and finds it below ``e^epsilon`` in every
instance.  This module reproduces the measurement exactly: the direct
mechanism's probabilities are computable in closed form from the two
reference files, no sampling noise involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.reference import ReferenceFile
from repro.core.verification import OutlierVerifier
from repro.data.neighbors import remove_random_records
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.harness import Workbench
from repro.experiments.tables import DETECTOR_KWARGS, TableResult
from repro.mechanisms.accounting import epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.ocdp import ocdp_ratio_bound
from repro.rng import RngLike, ensure_rng, spawn


@dataclass
class PrivacyRatioResult:
    """Per-detector maximum observed probability ratio vs the epsilon bound."""

    epsilon: float
    bound: float
    #: detector -> (max ratio over all sampled outlier/neighbour/context
    #: triples, number of triples measured, number of COE mismatches seen)
    by_detector: Dict[str, tuple]

    def to_table(self, notes: str = "") -> TableResult:
        rows = []
        for det, (max_ratio, n_measured, n_mismatch) in self.by_detector.items():
            rows.append(
                [
                    det,
                    f"{max_ratio:.4f}",
                    f"{self.bound:.4f}",
                    "yes" if max_ratio <= self.bound else "NO",
                    str(n_measured),
                    str(n_mismatch),
                ]
            )
        return TableResult(
            "6.7(ii)",
            f"Empirical privacy ratio vs e^eps (eps={self.epsilon:g})",
            ["Algorithm", "max ratio", "e^eps", "within bound", "contexts", "COE mismatches"],
            rows,
            notes,
        )


def max_probability_ratio(
    reference_1: ReferenceFile,
    reference_2: ReferenceFile,
    record_id: int,
    epsilon: float,
) -> tuple[float, int, bool]:
    """Max selection-probability ratio over the COE intersection.

    Returns ``(max ratio, contexts compared, coe sets differed?)``; the
    ratio is 0.0 when the intersection is empty.
    """
    coe1 = reference_1.matching_contexts(record_id)
    coe2 = reference_2.matching_contexts(record_id)
    set1, set2 = set(coe1), set(coe2)
    intersection = sorted(set1 & set2)
    if not intersection or not coe1 or not coe2:
        return 0.0, 0, set1 != set2

    eps1 = epsilon_one_for("direct", epsilon)
    mech = ExponentialMechanism(eps1, sensitivity=1.0)
    p1 = mech.probabilities([float(reference_1.population_size(b)) for b in coe1])
    p2 = mech.probabilities([float(reference_2.population_size(b)) for b in coe2])
    prob1 = dict(zip(coe1, p1))
    prob2 = dict(zip(coe2, p2))

    max_ratio = 0.0
    for bits in intersection:
        a, b = prob1[bits], prob2[bits]
        if a == 0.0 or b == 0.0:  # pragma: no cover - softmax is never 0 here
            continue
        max_ratio = max(max_ratio, a / b, b / a)
    return max_ratio, len(intersection), set1 != set2


def privacy_ratio_experiment(
    scale: str | ExperimentScale = "small",
    seed: RngLike = 0,
    epsilon: float = 0.2,
    detectors: Sequence[str] = ("grubbs", "lof", "histogram"),
    dataset_name: str = "salary_reduced",
) -> PrivacyRatioResult:
    """Reproduce the Section 6.7 (ii) measurement on one dataset."""
    cfg = get_scale(scale) if isinstance(scale, str) else scale
    gen = ensure_rng(seed)
    n_records = (
        cfg.salary_reduced_records
        if dataset_name == "salary_reduced"
        else cfg.homicide_reduced_records
    )

    by_detector: Dict[str, tuple] = {}
    for det_name in detectors:
        bench = Workbench.get(
            dataset_name, n_records, 7, det_name, DETECTOR_KWARGS[det_name]
        )
        outliers = bench.pick_outliers(cfg.coe_outliers, gen, min_matching_contexts=1)
        neighbor_rngs = spawn(gen, cfg.coe_neighbors)
        max_ratio = 0.0
        n_measured = 0
        n_mismatch = 0
        for nb_rng in neighbor_rngs:
            neighbor = remove_random_records(
                bench.dataset, 1, nb_rng, protected_ids=outliers
            )
            nb_reference = ReferenceFile.build(OutlierVerifier(neighbor, bench.detector))
            for rid in outliers:
                ratio, measured, mismatched = max_probability_ratio(
                    bench.reference, nb_reference, rid, epsilon
                )
                max_ratio = max(max_ratio, ratio)
                n_measured += measured
                n_mismatch += int(mismatched)
        by_detector[det_name] = (max_ratio, n_measured, n_mismatch)

    return PrivacyRatioResult(
        epsilon=epsilon,
        bound=ocdp_ratio_bound(epsilon),
        by_detector=by_detector,
    )

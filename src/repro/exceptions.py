"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime ones.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed (duplicate names, empty domains, bad metric)."""


class DatasetError(ReproError):
    """A dataset is inconsistent with its schema or otherwise unusable."""


class ContextError(ReproError):
    """A context bitvector is malformed for the given schema."""


class SpecError(ReproError):
    """A declarative pipeline spec is invalid or cannot be (de)serialized."""


class PrivacyBudgetError(ReproError):
    """A privacy parameter is invalid (non-positive epsilon, bad split)."""


class MechanismError(ReproError):
    """A differential-privacy mechanism received unusable inputs."""


class SamplingError(ReproError):
    """A sampler could not produce the requested number of samples."""


class VerificationError(ReproError):
    """Outlier verification was asked about a record outside the dataset."""


class EnumerationError(ReproError):
    """Full context enumeration failed or was refused (space too large)."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run cannot proceed."""


class ExecutionError(ReproError):
    """A parallel execution backend failed (dead worker, unshippable task)."""


class LedgerError(ReproError):
    """A durable privacy ledger is unusable (unwritable path, corrupt body)."""


class ServerError(ReproError):
    """The PCOR HTTP service failed (bad config, transport or protocol error)."""


class ShardUnavailableError(ServerError):
    """A cluster shard has no live worker to serve the request (HTTP 503).

    Transient by design: the router's supervisor respawns crashed workers,
    so the same request is expected to succeed after ``Retry-After``.
    """


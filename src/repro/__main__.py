"""Allow ``python -m repro`` as an alias for the ``pcor`` CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

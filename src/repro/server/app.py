"""The PCOR HTTP service: a stdlib-only multi-tenant release API.

:class:`PCORServer` wraps a :class:`~http.server.ThreadingHTTPServer` around
a :class:`~repro.server.registry.DatasetRegistry`.  Each request thread
performs tenant-layered admission and then delegates the release to the
dataset's :class:`~repro.service.engine.ReleaseEngine` (whose execution
backend — serial / thread / process, from PR 3 — does the heavy fan-out),
so the handler pool stays thin.

Routes (all JSON):

=======  ===================================  =====================================
Method   Path                                 Body / semantics
=======  ===================================  =====================================
GET      ``/healthz``                         liveness + hosted dataset names
                                              (answered even while draining,
                                              with ``"status": "draining"``)
GET      ``/v1/datasets``                     per-dataset budget/engine summary
GET      ``/v1/budget``                       caller's budgets (tenant header;
                                              optional ``?dataset=NAME``)
GET      ``/v1/metrics``                      monotonic counters per dataset,
                                              incl. per-tenant spend breakdown
POST     ``/v1/datasets/{name}/release``      ``{"record_id", "spec", "seed"?,
                                              "starting_context"?}`` →
                                              ``PCORResult.to_dict()``
=======  ===================================  =====================================

Analysts authenticate with the ``X-PCOR-Tenant`` header (required on
``/v1/budget`` and releases).  Errors come back as typed payloads
``{"error": {"type", "message", "status"}}``: budget exhaustion maps to
402, validation to 400, unknown datasets/routes to 404, releases that fail
mid-run to 422, shutdown drain to 503 (with ``Retry-After``) — and the
client resurrects the original exception class from ``type``.  The wire
dialect itself (handler core, drain window, error mapping) lives in
:mod:`repro.server.http`, shared with the cluster router.
"""

from __future__ import annotations

import json
import logging
import threading
from typing import Any, Dict, Mapping, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.exceptions import ServerError
from repro.server.batching import CoalescerClosed, ReleaseCoalescer
from repro.server.config import ServerConfig
from repro.server.http import (
    TENANT_HEADER,
    DrainState,
    JsonRequestHandler,
    ThreadingJsonServer,
    _BadRequest,
)
from repro.server.registry import DatasetRegistry
from repro.service.engine import ReleaseRequest
from repro.service.spec import PipelineSpec

logger = logging.getLogger("repro.server")

__all__ = ["PCORServer", "TENANT_HEADER"]


class _Handler(JsonRequestHandler):
    """One request against a :class:`PCORServer` (``self.server.app``)."""

    def _route_get(self, raw: bytes) -> None:
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._respond(200, self._app().health())
        elif url.path == "/v1/datasets":
            self._respond(200, self._app().list_datasets())
        elif url.path == "/v1/budget":
            query = parse_qs(url.query)
            dataset = query.get("dataset", [None])[0]
            self._respond(
                200, self._app().budget(self._tenant(), dataset=dataset)
            )
        elif url.path == "/v1/metrics":
            self._respond(200, self._app().metrics())
        else:
            raise ServerError(f"no such route: GET {url.path}")

    def _route_post(self, raw: bytes) -> None:
        url = urlparse(self.path)
        parts = url.path.strip("/").split("/")
        if len(parts) == 4 and parts[:2] == ["v1", "datasets"] and parts[3] == "release":
            body = self._parse_json(raw)
            payload = self._app().release(parts[2], self._tenant(), body)
            self._respond(200, payload)
        else:
            raise ServerError(f"no such route: POST {url.path}")


class PCORServer:
    """The multi-tenant PCOR release service.

    Parameters
    ----------
    config:
        A :class:`ServerConfig` (or a path-free mapping accepted by
        :meth:`ServerConfig.from_dict`), *or* a pre-built
        :class:`DatasetRegistry`.
    host / port:
        Bind address overrides (``port=0`` binds an ephemeral port —
        read the real one off :attr:`port` after construction).

    Use as a context manager, or call :meth:`start` /: :meth:`shutdown`
    explicitly.  :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        config: Union[ServerConfig, Mapping, DatasetRegistry],
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        if isinstance(config, DatasetRegistry):
            self.registry = config
            server_config = config.config
        else:
            if not isinstance(config, ServerConfig):
                config = ServerConfig.from_dict(config)
            server_config = config
            self.registry = DatasetRegistry(config)
        self.config = server_config
        bind = (
            host if host is not None else server_config.host,
            port if port is not None else server_config.port,
        )
        try:
            self._httpd = ThreadingJsonServer(bind, _Handler)
        except OSError as exc:
            self.registry.close()
            raise ServerError(f"cannot bind {bind[0]}:{bind[1]}: {exc}") from None
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._responses_by_status: Dict[str, int] = {}
        # Shutdown drain: handler threads are daemonic and NOT joined by
        # server_close(), so the ledger must not close until every request
        # that entered a release path has left it.
        self.drain = DrainState()
        # One coalescer per dataset that opted in (max_batch > 1); the
        # engine_for thunk keeps dataset construction lazy.
        self._coalescers: Dict[str, ReleaseCoalescer] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            if entry.config.max_batch > 1:
                self._coalescers[name] = ReleaseCoalescer(
                    tenants=entry.tenants,
                    engine_for=(lambda e=entry: e.engine),
                    max_batch=entry.config.max_batch,
                    max_delay_ms=entry.config.max_delay_ms,
                    name=name,
                )
        # Validated-spec cache: analysts overwhelmingly resubmit the same
        # pipeline with new records/seeds, and eager PipelineSpec validation
        # (registry + signature checks) costs ~0.1 ms — worth skipping.
        # PipelineSpec is frozen, so cached instances are safe to share.
        self._spec_cache: Dict[str, PipelineSpec] = {}

    # ------------------------------------------------------------ lifecycle

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """True once shutdown began (mirrored by ``/healthz`` as
        ``"status": "draining"`` — worker heartbeats forward it)."""
        return self.drain.draining

    def start(self) -> "PCORServer":
        """Serve in a background thread (idempotent); returns ``self``."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="pcor-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release every engine and ledger (idempotent).

        In-flight requests finish first — ``ThreadingHTTPServer`` uses
        daemonic handler threads that ``server_close()`` does *not* join,
        so a drain barrier waits for every request already inside a
        handler (including those parked on coalescer futures), then the
        coalescers flush whatever is still queued, and only then do the
        listener and the ledgers close.  Ledger stores fsync on every
        admitted charge, so shutdown never loses recorded spend.
        """
        # BaseServer.shutdown() blocks on serve_forever's exit event, which
        # only a *running* serve loop ever sets — skip it for a server that
        # was constructed (or already stopped) but never (re)started, e.g.
        # an app used in-process via PCORServer.release() without start().
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
        self.drain.drain()
        for coalescer in self._coalescers.values():
            coalescer.close()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.close()

    def abort(self) -> None:
        """Tear the server down *without* draining (crash simulation).

        Closes the listener and the registry immediately, abandoning any
        in-flight request mid-handler — the closest an in-process worker
        gets to ``kill -9``.  Ledgers fsync per admitted charge, so the
        durable state an :meth:`abort` leaves behind is exactly what a
        real crash would: every admitted charge present, nothing else.
        """
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.close()

    def __enter__(self) -> "PCORServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _count(self, status: int) -> None:
        key = f"{status // 100}xx"
        with self._lock:
            self._responses_by_status[key] = (
                self._responses_by_status.get(key, 0) + 1
            )

    # ------------------------------------------------------------ endpoints

    def health(self) -> Dict[str, Any]:
        """Liveness + drain status.  Unlike every other route this is
        answered even mid-shutdown: the router heartbeat (and any
        orchestrator probe) distinguishes a *draining* worker — stop
        routing to it, don't respawn it — from a dead one."""
        return {
            "status": "draining" if self.drain.draining else "ok",
            "version": __version__,
            "datasets": self.registry.names(),
        }

    def list_datasets(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            accountant = entry.accountant
            out[name] = {
                "source": entry.config.source,
                "built": entry.built,
                "budget": accountant.budget if accountant is not None else None,
                "spent": accountant.spent if accountant is not None else None,
                "remaining": (
                    accountant.remaining if accountant is not None else None
                ),
                "tenant_budget": entry.config.tenant_budget,
            }
        return {"datasets": out}

    def budget(self, tenant: str, dataset: Optional[str] = None) -> Dict[str, Any]:
        names = [dataset] if dataset is not None else self.registry.names()
        budgets = {}
        for name in names:
            entry = self.registry.get(name)  # unknown name -> 404
            budgets[name] = entry.tenants.describe(tenant)
        return {"tenant": tenant, "datasets": budgets}

    def metrics(self) -> Dict[str, Any]:
        """Monotonic service counters (safe to difference between scrapes)."""
        datasets: Dict[str, Any] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            if entry.built:
                m = entry.engine.metrics()
                m.spend_by_tenant = entry.tenants.spend_by_tenant()
                body = m.to_dict()
            else:
                accountant = entry.accountant
                body = {
                    "epsilon_spent": (
                        accountant.spent if accountant is not None else 0.0
                    ),
                    "epsilon_budget": (
                        accountant.budget if accountant is not None else None
                    ),
                    "epsilon_remaining": (
                        accountant.remaining if accountant is not None else None
                    ),
                    "ledger_charges": (
                        len(accountant.ledger()) if accountant is not None else 0
                    ),
                    "spend_by_tenant": entry.tenants.spend_by_tenant(),
                }
            body["tenant_rejections"] = entry.tenants.rejections()
            coalescer = self._coalescers.get(name)
            if coalescer is not None:
                # Overwrite the engine's zeroed batch_* placeholders with
                # the live coalescer counters (same keys, same monotonicity
                # contract as EngineMetrics documents).
                body.update(coalescer.snapshot())
            datasets[name] = body
        with self._lock:
            responses = dict(self._responses_by_status)
        return {"server": {"responses_by_status": responses}, "datasets": datasets}

    def release(
        self, dataset: str, tenant: str, body: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Admit (both ledgers, atomically) then execute one release.

        Datasets configured with ``max_batch > 1`` route through their
        :class:`~repro.server.batching.ReleaseCoalescer`: the handler
        thread parks on a future while the flusher admits and executes a
        whole batch at once.  The response payload is bit-identical either
        way — coalescing only changes *when* the work runs, never what a
        given ``(record_id, spec, seed)`` releases.
        """
        entry = self.registry.get(dataset)  # unknown name -> 404
        request = self._parse_release(body)
        label = (
            f"release(tenant={tenant}, record={request.record_id}, "
            f"sampler={request.spec.sampler}, epsilon={request.spec.epsilon:g})"
        )
        coalescer = self._coalescers.get(dataset)
        if coalescer is not None:
            try:
                future = coalescer.submit(tenant, label, request)
            except CoalescerClosed:
                # Racing shutdown: the direct path below still answers
                # correctly (admission + execution, no queue involved).
                pass
            else:
                result = future.result()  # raises what the direct path would
                return {
                    "result": result.to_dict(),
                    "budget": entry.tenants.describe(tenant),
                }
        # Admission happens before the engine (and hence the dataset and
        # detector) is even built: an over-budget tenant is rejected with
        # 402 before a single f_M evaluation, restart or not.
        entry.tenants.admit(tenant, label, request.spec.epsilon)
        result = entry.engine.execute(request)
        return {
            "result": result.to_dict(),
            "budget": entry.tenants.describe(tenant),
        }

    # -------------------------------------------------------------- parsing

    _SPEC_CACHE_MAX = 256

    def _parse_spec(self, spec_body: Mapping[str, Any]) -> PipelineSpec:
        try:
            key = json.dumps(spec_body, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            raise _BadRequest("spec must be a JSON-serializable object") from None
        with self._lock:
            spec = self._spec_cache.get(key)
        if spec is None:
            spec = PipelineSpec.from_dict(spec_body)  # SpecError -> 400
            with self._lock:
                if len(self._spec_cache) >= self._SPEC_CACHE_MAX:
                    self._spec_cache.clear()
                self._spec_cache[key] = spec
        return spec

    def _parse_release(self, body: Mapping[str, Any]) -> ReleaseRequest:
        unknown = sorted(
            set(body) - {"record_id", "spec", "seed", "starting_context"}
        )
        if unknown:
            raise _BadRequest(
                f"unknown release field(s) {unknown}; known: "
                "['record_id', 'seed', 'spec', 'starting_context']"
            )
        if "record_id" not in body:
            raise _BadRequest("release body is missing 'record_id'")
        record_id = body["record_id"]
        if isinstance(record_id, bool) or not isinstance(record_id, int):
            raise _BadRequest(
                f"record_id must be an integer, got {record_id!r}"
            )
        spec_body = body.get("spec")
        if not isinstance(spec_body, Mapping):
            raise _BadRequest(
                "release body needs a 'spec' object (a PipelineSpec mapping)"
            )
        spec = self._parse_spec(spec_body)
        seed = body.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise _BadRequest(
                f"seed must be an integer or null, got {seed!r}"
            )
        starting = body.get("starting_context")
        if starting is not None and (
            isinstance(starting, bool) or not isinstance(starting, int)
        ):
            raise _BadRequest(
                "starting_context must be an integer context bitmask or null, "
                f"got {starting!r}"
            )
        return ReleaseRequest(
            record_id=record_id,
            spec=spec,
            starting_context=starting,
            seed=seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PCORServer(url={self.url!r}, datasets={self.registry.names()})"

"""The PCOR HTTP service: a stdlib-only multi-tenant release API.

:class:`PCORServer` wraps a :class:`~http.server.ThreadingHTTPServer` around
a :class:`~repro.server.registry.DatasetRegistry`.  Each request thread
performs tenant-layered admission and then delegates the release to the
dataset's :class:`~repro.service.engine.ReleaseEngine` (whose execution
backend — serial / thread / process, from PR 3 — does the heavy fan-out),
so the handler pool stays thin.

Routes (all JSON):

=======  ===================================  =====================================
Method   Path                                 Body / semantics
=======  ===================================  =====================================
GET      ``/healthz``                         liveness + hosted dataset names
                                              (answered even while draining,
                                              with ``"status": "draining"``)
GET      ``/v1/datasets``                     per-dataset budget/engine summary
GET      ``/v1/budget``                       caller's budgets (tenant header;
                                              optional ``?dataset=NAME``)
GET      ``/v1/metrics``                      monotonic counters per dataset,
                                              incl. per-tenant spend breakdown
GET      ``/v1/metrics/prometheus``           the same counters (plus request
                                              latency histograms) in the
                                              Prometheus text exposition
GET      ``/v1/debug/profile``                sample this process's stacks for
                                              ``?seconds=N`` at ``?hz=M`` and
                                              return collapsed ("folded") stacks
                                              with engine-phase annotations
GET      ``/v1/debug/events``                 the last ``?n=K`` structured
                                              events from the in-memory ring
POST     ``/v1/datasets/{name}/release``      ``{"record_id", "spec", "seed"?,
                                              "starting_context"?}`` →
                                              ``PCORResult.to_dict()`` (plus a
                                              ``trace`` span timeline for
                                              sampled requests)
=======  ===================================  =====================================

Analysts authenticate with the ``X-PCOR-Tenant`` header (required on
``/v1/budget`` and releases).  Errors come back as typed payloads
``{"error": {"type", "message", "status"}}``: budget exhaustion maps to
402, validation to 400, unknown datasets/routes to 404, releases that fail
mid-run to 422, shutdown drain to 503 (with ``Retry-After``) — and the
client resurrects the original exception class from ``type``.  The wire
dialect itself (handler core, drain window, error mapping) lives in
:mod:`repro.server.http`, shared with the cluster router.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from typing import Any, Dict, Mapping, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro import __version__
from repro.exceptions import DatasetError, SchemaError, ServerError
from repro.obs.logs import log_event
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    render_text,
)
from repro.obs.export import dataset_families
from repro.obs.events import (
    EventBufferHandler,
    install_event_buffer,
    uninstall_event_buffer,
)
from repro.obs.profiler import ProfileSessions, ProfilerDisarmed
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    process_rss_bytes,
    trace_for_request,
)
from repro.server.batching import CoalescerClosed, ReleaseCoalescer
from repro.server.config import ObservabilityConfig, ServerConfig
from repro.server.http import (
    TENANT_HEADER,
    DrainState,
    JsonRequestHandler,
    ThreadingJsonServer,
    _BadRequest,
    _Draining,
    query_number,
)
from repro.server.registry import DatasetRegistry
from repro.service.engine import ReleaseRequest
from repro.service.spec import PipelineSpec

logger = logging.getLogger("repro.server")

__all__ = ["PCORServer", "TENANT_HEADER", "TRACE_HEADER"]


class _Handler(JsonRequestHandler):
    """One request against a :class:`PCORServer` (``self.server.app``)."""

    def _route_get(self, raw: bytes) -> None:
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._respond(200, self._app().health())
        elif url.path == "/v1/datasets":
            self._respond(200, self._app().list_datasets())
        elif url.path == "/v1/budget":
            query = parse_qs(url.query)
            dataset = query.get("dataset", [None])[0]
            self._respond(
                200, self._app().budget(self._tenant(), dataset=dataset)
            )
        elif url.path == "/v1/metrics":
            self._respond(200, self._app().metrics())
        elif url.path == "/v1/metrics/prometheus":
            self._respond_raw(
                200,
                self._app().prometheus_metrics().encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        elif url.path == "/v1/debug/profile":
            query = parse_qs(url.query)
            self._respond(
                200,
                self._app().debug_profile(
                    seconds=query_number(query, "seconds"),
                    hz=query_number(query, "hz"),
                ),
            )
        elif url.path == "/v1/debug/events":
            query = parse_qs(url.query)
            self._respond(
                200, self._app().debug_events(n=query_number(query, "n"))
            )
        else:
            raise ServerError(f"no such route: GET {url.path}")

    def _route_post(self, raw: bytes) -> None:
        url = urlparse(self.path)
        parts = url.path.strip("/").split("/")
        if len(parts) == 4 and parts[:2] == ["v1", "datasets"] and parts[3] == "release":
            body = self._parse_json(raw)
            trace = self._app().trace_for(self.headers)
            payload = self._app().release(
                parts[2], self._tenant(), body, trace=trace
            )
            self._respond(200, payload)
        elif len(parts) == 4 and parts[:2] == ["v1", "datasets"] and parts[3] == "append":
            body = self._parse_json(raw)
            self._respond(
                200, self._app().append(parts[2], self._tenant(), body)
            )
        else:
            raise ServerError(f"no such route: POST {url.path}")


class PCORServer:
    """The multi-tenant PCOR release service.

    Parameters
    ----------
    config:
        A :class:`ServerConfig` (or a path-free mapping accepted by
        :meth:`ServerConfig.from_dict`), *or* a pre-built
        :class:`DatasetRegistry`.
    host / port:
        Bind address overrides (``port=0`` binds an ephemeral port —
        read the real one off :attr:`port` after construction).

    Use as a context manager, or call :meth:`start` /: :meth:`shutdown`
    explicitly.  :meth:`serve_forever` blocks (the CLI path).
    """

    def __init__(
        self,
        config: Union[ServerConfig, Mapping, DatasetRegistry],
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> None:
        if isinstance(config, DatasetRegistry):
            self.registry = config
            server_config = config.config
        else:
            if not isinstance(config, ServerConfig):
                config = ServerConfig.from_dict(config)
            server_config = config
            self.registry = DatasetRegistry(config)
        self.config = server_config
        bind = (
            host if host is not None else server_config.host,
            port if port is not None else server_config.port,
        )
        try:
            self._httpd = ThreadingJsonServer(bind, _Handler)
        except OSError as exc:
            self.registry.close()
            raise ServerError(f"cannot bind {bind[0]}:{bind[1]}: {exc}") from None
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.obs = server_config.observability or ObservabilityConfig()
        # The typed registry behind both /v1/metrics JSON (derived view)
        # and the /v1/metrics/prometheus exposition.
        self.metrics_registry = MetricsRegistry()
        self._responses = self.metrics_registry.counter(
            "pcor_http_responses_total",
            "HTTP responses by status class.",
            labelnames=("status",),
        )
        self._release_latency = self.metrics_registry.histogram(
            "pcor_release_latency_seconds",
            "End-to-end release latency as served (admission + execution).",
            labelnames=("dataset",),
        )
        # Shutdown drain: handler threads are daemonic and NOT joined by
        # server_close(), so the ledger must not close until every request
        # that entered a release path has left it.
        self.drain = DrainState()
        # Debug introspection: in-flight /v1/debug/profile sessions (so
        # shutdown can disarm them before the drain barrier waits) and the
        # bounded ring of recent structured events behind /v1/debug/events.
        self._profiles = ProfileSessions()
        self._events_handler: Optional[EventBufferHandler] = (
            install_event_buffer(self.obs.events_buffer)
            if self.obs.events_buffer > 0
            else None
        )
        # One coalescer per dataset that opted in (max_batch > 1); the
        # engine_for thunk keeps dataset construction lazy.
        self._coalescers: Dict[str, ReleaseCoalescer] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            if entry.config.max_batch > 1:
                self._coalescers[name] = ReleaseCoalescer(
                    tenants=entry.tenants,
                    engine_for=(lambda e=entry: e.engine),
                    max_batch=entry.config.max_batch,
                    max_delay_ms=entry.config.max_delay_ms,
                    name=name,
                )
        # Validated-spec cache: analysts overwhelmingly resubmit the same
        # pipeline with new records/seeds, and eager PipelineSpec validation
        # (registry + signature checks) costs ~0.1 ms — worth skipping.
        # PipelineSpec is frozen, so cached instances are safe to share.
        self._spec_cache: Dict[str, PipelineSpec] = {}

    # ------------------------------------------------------------ lifecycle

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """True once shutdown began (mirrored by ``/healthz`` as
        ``"status": "draining"`` — worker heartbeats forward it)."""
        return self.drain.draining

    def start(self) -> "PCORServer":
        """Serve in a background thread (idempotent); returns ``self``."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="pcor-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release every engine and ledger (idempotent).

        In-flight requests finish first — ``ThreadingHTTPServer`` uses
        daemonic handler threads that ``server_close()`` does *not* join,
        so a drain barrier waits for every request already inside a
        handler (including those parked on coalescer futures), then the
        coalescers flush whatever is still queued, and only then do the
        listener and the ledgers close.  Ledger stores fsync on every
        admitted charge, so shutdown never loses recorded spend.
        """
        # BaseServer.shutdown() blocks on serve_forever's exit event, which
        # only a *running* serve loop ever sets — skip it for a server that
        # was constructed (or already stopped) but never (re)started, e.g.
        # an app used in-process via PCORServer.release() without start().
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
        # Disarm BEFORE the drain barrier waits: an in-flight profile
        # session would otherwise park its handler inside the drain window
        # for up to MAX_SECONDS and stall (then time out) the drain.
        self._profiles.disarm()
        self.drain.drain()
        for coalescer in self._coalescers.values():
            coalescer.close()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.close()
        self._uninstall_events()

    def abort(self) -> None:
        """Tear the server down *without* draining (crash simulation).

        Closes the listener and the registry immediately, abandoning any
        in-flight request mid-handler — the closest an in-process worker
        gets to ``kill -9``.  Ledgers fsync per admitted charge, so the
        durable state an :meth:`abort` leaves behind is exactly what a
        real crash would: every admitted charge present, nothing else.
        """
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
        self._profiles.disarm()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.close()
        self._uninstall_events()

    def _uninstall_events(self) -> None:
        """Detach this server's event ring from the logger tree (idempotent)
        so long-lived processes creating many servers don't leak handlers."""
        if self._events_handler is not None:
            uninstall_event_buffer(self._events_handler)
            self._events_handler = None

    def __enter__(self) -> "PCORServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _count(self, status: int) -> None:
        self._responses.inc(labels=(f"{status // 100}xx",))

    def trace_for(self, headers: Mapping[str, str]) -> Optional[Trace]:
        """The trace context for one incoming request: adopt the
        ``X-PCOR-Trace`` header (router-minted) or mint fresh at this
        edge; ``None`` when tracing is disabled."""
        return trace_for_request(headers.get(TRACE_HEADER), self.obs)

    # ------------------------------------------------------------ endpoints

    def health(self) -> Dict[str, Any]:
        """Liveness + drain status.  Unlike every other route this is
        answered even mid-shutdown: the router heartbeat (and any
        orchestrator probe) distinguishes a *draining* worker — stop
        routing to it, don't respawn it — from a dead one."""
        return {
            "status": "draining" if self.drain.draining else "ok",
            "version": __version__,
            "datasets": self.registry.names(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "rss_bytes": process_rss_bytes(),
            "observability": {
                "enabled": self.obs.enabled,
                "sample_rate": self.obs.sample_rate,
                "slow_request_ms": self.obs.slow_request_ms,
                "log_format": self.obs.log_format,
            },
        }

    def list_datasets(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            accountant = entry.accountant
            out[name] = {
                "source": entry.config.source,
                "built": entry.built,
                "budget": accountant.budget if accountant is not None else None,
                "spent": accountant.spent if accountant is not None else None,
                "remaining": (
                    accountant.remaining if accountant is not None else None
                ),
                "tenant_budget": entry.config.tenant_budget,
            }
        return {"datasets": out}

    def budget(self, tenant: str, dataset: Optional[str] = None) -> Dict[str, Any]:
        names = [dataset] if dataset is not None else self.registry.names()
        budgets = {}
        for name in names:
            entry = self.registry.get(name)  # unknown name -> 404
            budgets[name] = entry.tenants.describe(tenant)
        return {"tenant": tenant, "datasets": budgets}

    def metrics(self) -> Dict[str, Any]:
        """Monotonic service counters (safe to difference between scrapes)."""
        datasets: Dict[str, Any] = {}
        for name in self.registry.names():
            entry = self.registry.get(name)
            if entry.built:
                m = entry.engine.metrics()
                m.spend_by_tenant = entry.tenants.spend_by_tenant()
                body = m.to_dict()
            else:
                accountant = entry.accountant
                body = {
                    "epsilon_spent": (
                        accountant.spent if accountant is not None else 0.0
                    ),
                    "epsilon_budget": (
                        accountant.budget if accountant is not None else None
                    ),
                    "epsilon_remaining": (
                        accountant.remaining if accountant is not None else None
                    ),
                    "ledger_charges": (
                        len(accountant.ledger()) if accountant is not None else 0
                    ),
                    "spend_by_tenant": entry.tenants.spend_by_tenant(),
                }
            body["tenant_rejections"] = entry.tenants.rejections()
            coalescer = self._coalescers.get(name)
            if coalescer is not None:
                # Overwrite the engine's zeroed batch_* placeholders with
                # the live coalescer counters (same keys, same monotonicity
                # contract as EngineMetrics documents).
                body.update(coalescer.snapshot())
            datasets[name] = body
        responses = {key[0]: int(value) for key, value in self._responses.items()}
        return {"server": {"responses_by_status": responses}, "datasets": datasets}

    def prometheus_metrics(self) -> str:
        """The Prometheus text exposition: the registry's own families
        (HTTP responses, release latency histograms) plus a scrape-time
        derived view of the per-dataset JSON counters."""
        families = self.metrics_registry.collect()
        families.extend(dataset_families(self.metrics()["datasets"]))
        return render_text(families)

    def debug_profile(
        self, seconds: Optional[float] = None, hz: Optional[float] = None
    ) -> Dict[str, Any]:
        """Sample this process for ``seconds`` and return folded stacks.

        Blocks the calling handler thread for the sampling window (the
        server keeps serving on its other threads).  A shutdown arriving
        mid-session disarms it: the session returns early with whatever
        samples it gathered, flagged ``"disarmed": true``, and later
        attempts get the same typed 503 + ``Retry-After`` as any other
        drain-refused request.
        """
        try:
            return self._profiles.run(seconds=seconds, hz=hz)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        except ProfilerDisarmed as exc:
            raise _Draining(str(exc)) from None

    def debug_events(self, n: Optional[float] = None) -> Dict[str, Any]:
        """The last ``n`` structured events from the in-memory ring."""
        if self._events_handler is None:
            raise ServerError(
                "event ring is disabled (observability events_buffer = 0)"
            )
        if n is not None and n < 0:
            raise _BadRequest(f"n must be >= 0, got {n:g}")
        return self._events_handler.buffer.snapshot(
            int(n) if n is not None else None
        )

    def release(
        self,
        dataset: str,
        tenant: str,
        body: Mapping[str, Any],
        trace: Optional[Trace] = None,
    ) -> Dict[str, Any]:
        """Admit (both ledgers, atomically) then execute one release.

        Datasets configured with ``max_batch > 1`` route through their
        :class:`~repro.server.batching.ReleaseCoalescer`: the handler
        thread parks on a future while the flusher admits and executes a
        whole batch at once.  The ``result`` payload is bit-identical
        either way — coalescing only changes *when* the work runs, never
        what a given ``(record_id, spec, seed)`` releases.

        With a sampled ``trace``, the request carries it through every
        layer and the response gains a top-level ``trace`` key — the span
        timeline — *next to* ``result``, so the release result itself
        stays bit-identical with tracing on or off.  Every release also
        emits one structured ``request`` log event; releases slower than
        ``observability.slow_request_ms`` dump their spans as a
        ``slow_request`` warning.
        """
        started = time.monotonic()
        status = "ok"
        epsilon: Optional[float] = None
        try:
            entry = self.registry.get(dataset)  # unknown name -> 404
            request = self._parse_release(body, trace=trace)
            epsilon = request.spec.epsilon
            label = (
                f"release(tenant={tenant}, record={request.record_id}, "
                f"sampler={request.spec.sampler}, epsilon={epsilon:g})"
            )
            result = None
            coalescer = self._coalescers.get(dataset)
            if coalescer is not None:
                try:
                    future = coalescer.submit(tenant, label, request)
                except CoalescerClosed:
                    # Racing shutdown: the direct path below still answers
                    # correctly (admission + execution, no queue involved).
                    pass
                else:
                    result = future.result()  # raises what the direct path would
            if result is None:
                # Admission happens before the engine (and hence the
                # dataset and detector) is even built: an over-budget
                # tenant is rejected with 402 before a single f_M
                # evaluation, restart or not.
                if trace is not None and trace.sampled:
                    with trace.span("admission", batch=1):
                        entry.tenants.admit(tenant, label, epsilon)
                else:
                    entry.tenants.admit(tenant, label, epsilon)
                result = entry.engine.execute(request)
            payload = {
                "result": result.to_dict(),
                "budget": entry.tenants.describe(tenant),
            }
        except Exception as exc:
            status = type(exc).__name__
            raise
        finally:
            ended = time.monotonic()
            self._release_latency.observe(ended - started, labels=(dataset,))
            if trace is not None and trace.sampled:
                trace.add_span(
                    "server.handle",
                    started,
                    ended,
                    dataset=dataset,
                    tenant=tenant,
                    status=status,
                )
            self._log_release(
                trace, tenant, dataset, epsilon, status, ended - started
            )
        if trace is not None and trace.sampled:
            payload["trace"] = trace.to_dict()
        return payload

    def append(
        self,
        dataset: str,
        tenant: str,
        body: Mapping[str, Any],
    ) -> Dict[str, Any]:
        """Append records to a served dataset (``POST .../append``).

        The engine grows its mask index incrementally and bumps the
        dataset version; cached profiles whose contexts contain an
        appended record are invalidated, everything else survives.
        Releases concurrent with the append run against either the old or
        the new version — each response's ``result.dataset_version`` says
        which.  Appends charge no privacy budget: the OCDP guarantee is
        per-release, and the new records are protected by the same
        mechanism from their first release onward.
        """
        entry = self.registry.get(dataset)  # unknown name -> 404
        unknown = sorted(set(body) - {"records"})
        if unknown:
            raise _BadRequest(
                f"unknown append field(s) {unknown}; known: ['records']"
            )
        records = body.get("records")
        if not isinstance(records, list) or not records:
            raise _BadRequest(
                "append body needs a non-empty 'records' list of objects"
            )
        for i, row in enumerate(records):
            if not isinstance(row, Mapping):
                raise _BadRequest(
                    f"records[{i}] must be an object, got {type(row).__name__}"
                )
        started = time.monotonic()
        try:
            info = entry.engine.append(records)
        except (DatasetError, SchemaError) as exc:
            # Well-formed JSON, bad data (unknown domain value, missing
            # attribute/metric): the client's fault, not a server fault.
            raise _BadRequest(str(exc)) from None
        log_event(
            logger,
            "append",
            tenant=tenant,
            dataset=dataset,
            appended=info["appended"],
            n_records=info["n_records"],
            dataset_version=info["dataset_version"],
            invalidated_profiles=info["invalidated_profiles"],
            duration_ms=round((time.monotonic() - started) * 1000.0, 3),
        )
        return {"dataset": dataset, **info}

    def _log_release(
        self,
        trace: Optional[Trace],
        tenant: str,
        dataset: str,
        epsilon: Optional[float],
        status: str,
        duration_s: float,
    ) -> None:
        duration_ms = round(duration_s * 1000.0, 3)
        log_event(
            logger,
            "request",
            trace_id=trace.trace_id if trace is not None else None,
            tenant=tenant,
            dataset=dataset,
            epsilon=epsilon,
            status=status,
            duration_ms=duration_ms,
        )
        if (
            trace is not None
            and trace.sampled
            and duration_ms > self.obs.slow_request_ms
        ):
            log_event(
                logger,
                "slow_request",
                level=logging.WARNING,
                trace_id=trace.trace_id,
                tenant=tenant,
                dataset=dataset,
                status=status,
                duration_ms=duration_ms,
                spans=trace.spans(),
            )

    # -------------------------------------------------------------- parsing

    _SPEC_CACHE_MAX = 256

    def _parse_spec(self, spec_body: Mapping[str, Any]) -> PipelineSpec:
        try:
            key = json.dumps(spec_body, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            raise _BadRequest("spec must be a JSON-serializable object") from None
        with self._lock:
            spec = self._spec_cache.get(key)
        if spec is None:
            spec = PipelineSpec.from_dict(spec_body)  # SpecError -> 400
            with self._lock:
                if len(self._spec_cache) >= self._SPEC_CACHE_MAX:
                    self._spec_cache.clear()
                self._spec_cache[key] = spec
        return spec

    def _parse_release(
        self, body: Mapping[str, Any], trace: Optional[Trace] = None
    ) -> ReleaseRequest:
        unknown = sorted(
            set(body) - {"record_id", "spec", "seed", "starting_context"}
        )
        if unknown:
            raise _BadRequest(
                f"unknown release field(s) {unknown}; known: "
                "['record_id', 'seed', 'spec', 'starting_context']"
            )
        if "record_id" not in body:
            raise _BadRequest("release body is missing 'record_id'")
        record_id = body["record_id"]
        if isinstance(record_id, bool) or not isinstance(record_id, int):
            raise _BadRequest(
                f"record_id must be an integer, got {record_id!r}"
            )
        spec_body = body.get("spec")
        if not isinstance(spec_body, Mapping):
            raise _BadRequest(
                "release body needs a 'spec' object (a PipelineSpec mapping)"
            )
        spec = self._parse_spec(spec_body)
        seed = body.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise _BadRequest(
                f"seed must be an integer or null, got {seed!r}"
            )
        starting = body.get("starting_context")
        if starting is not None and (
            isinstance(starting, bool) or not isinstance(starting, int)
        ):
            raise _BadRequest(
                "starting_context must be an integer context bitmask or null, "
                f"got {starting!r}"
            )
        return ReleaseRequest(
            record_id=record_id,
            spec=spec,
            starting_context=starting,
            seed=seed,
            trace=trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PCORServer(url={self.url!r}, datasets={self.registry.names()})"

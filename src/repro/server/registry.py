"""The dataset registry: names → lazily-built release engines.

One PCOR server hosts many datasets, each with its own
:class:`~repro.service.engine.ReleaseEngine` (mask index, profile caches,
execution backend), its own dataset-global
:class:`~repro.mechanisms.accounting.PrivacyAccountant`, and its own
:class:`~repro.server.tenants.TenantBudgets` over a durable
:class:`~repro.server.ledger.LedgerStore`.  Engines are built on first
use — a server hosting twenty datasets starts instantly and only pays the
bit-pack/detector costs of the datasets analysts actually query — but the
*ledger* of a durable entry is replayed eagerly at registration, because
budget truth must exist before any request is admitted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.exceptions import ServerError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.server.config import DatasetConfig, ServerConfig
from repro.server.ledger import InMemoryLedgerStore, JsonlLedgerStore, LedgerStore
from repro.server.tenants import TenantBudgets
from repro.service.engine import ReleaseEngine


@dataclass
class DatasetEntry:
    """One hosted dataset: its config, budgets, and (lazy) engine."""

    config: DatasetConfig
    tenants: TenantBudgets
    accountant: Optional[PrivacyAccountant]
    _engine: Optional[ReleaseEngine] = None
    _lock: threading.RLock = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._lock = threading.RLock()

    @property
    def built(self) -> bool:
        return self._engine is not None

    @property
    def engine(self) -> ReleaseEngine:
        """The entry's release engine, constructed on first access."""
        with self._lock:
            if self._engine is None:
                cfg = self.config
                kwargs = {}
                if cfg.profile_capacity is not None:
                    kwargs["profile_capacity"] = cfg.profile_capacity
                self._engine = ReleaseEngine(
                    cfg.build_dataset(),
                    accountant=self.accountant,
                    backend=cfg.backend,
                    workers=cfg.workers,
                    **kwargs,
                )
            return self._engine

    def close(self) -> None:
        with self._lock:
            if self._engine is not None:
                self._engine.close()
        self.tenants.close()


class DatasetRegistry:
    """Name → :class:`DatasetEntry` mapping behind the HTTP app.

    Parameters
    ----------
    config:
        The :class:`ServerConfig` naming every hosted dataset and the
        ledger policy.  ``ledger = "jsonl"`` gives each dataset an
        append-only WAL at ``{ledger_dir}/{name}.ledger.jsonl``, replayed
        at registration so restarted budgets resume exhausted.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self._entries: Dict[str, DatasetEntry] = {}
        for name, cfg in config.datasets.items():
            accountant = (
                PrivacyAccountant(cfg.budget) if cfg.budget is not None else None
            )
            self._entries[name] = DatasetEntry(
                config=cfg,
                accountant=accountant,
                tenants=TenantBudgets(
                    accountant=accountant,
                    default_budget=cfg.tenant_budget,
                    budgets=cfg.tenant_budgets,
                    store=self._make_store(name),
                    dataset=name,
                ),
            )

    def _make_store(self, name: str) -> LedgerStore:
        if self.config.ledger == "jsonl":
            path = Path(self.config.ledger_dir) / f"{name}.ledger.jsonl"
            return JsonlLedgerStore(path, fsync=self.config.fsync)
        return InMemoryLedgerStore()

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> DatasetEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise ServerError(
                f"unknown dataset {name!r}; hosted: {self.names()}"
            )
        return entry

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def close(self) -> None:
        """Close every engine and ledger store (idempotent)."""
        for entry in self._entries.values():
            entry.close()

    def __enter__(self) -> "DatasetRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatasetRegistry(datasets={self.names()}, ledger={self.config.ledger!r})"

"""The PCOR server: a multi-tenant HTTP release service.

The deployment story the paper tells (Sections 1, 6.3) — a data owner
operating PCOR as a service for analysts issuing repeated budgeted
queries — made concrete, stdlib-only:

* :mod:`repro.server.ledger` — durable, crash-replayable privacy ledgers
  (:class:`LedgerStore`, :class:`InMemoryLedgerStore`,
  :class:`JsonlLedgerStore`).
* :mod:`repro.server.tenants` — :class:`TenantBudgets`, per-analyst quotas
  admitted atomically against the dataset-global accountant.
* :mod:`repro.server.registry` — :class:`DatasetRegistry`, names to
  lazily-built :class:`~repro.service.engine.ReleaseEngine`\\ s.
* :mod:`repro.server.config` — :class:`ServerConfig` /
  :class:`DatasetConfig`, the ``pcor serve --config`` schema.
* :mod:`repro.server.app` — :class:`PCORServer`, the
  ``ThreadingHTTPServer`` JSON API.
* :mod:`repro.server.batching` — :class:`ReleaseCoalescer`, the
  coalescing admission front end (``max_batch``/``max_delay_ms`` per
  dataset) that batches concurrent releases through one group-commit
  admission and one ``execute_many`` call.
* :mod:`repro.server.client` — :class:`PCORClient`, the urllib analyst
  handle (``release_many`` fans out over pooled connections).

>>> from repro.server import PCORClient, PCORServer, ServerConfig
>>> config = ServerConfig.from_dict({
...     "server": {"port": 0},
...     "datasets": {"salary": {"source": "salary_reduced", "records": 500,
...                             "budget": 2.0, "tenant_budget": 0.5}},
... })
>>> with PCORServer(config) as server:  # doctest: +SKIP
...     client = PCORClient(server.url, tenant="alice")
...     client.release("salary", record_id=17,
...                    spec={"detector": "lof", "epsilon": 0.2}, seed=42)
"""

from repro.server.app import PCORServer, TENANT_HEADER
from repro.server.batching import CoalescerClosed, ReleaseCoalescer
from repro.server.client import PCORClient
from repro.server.config import (
    ClusterConfig,
    DatasetConfig,
    ObservabilityConfig,
    ServerConfig,
)
from repro.server.ledger import (
    InMemoryLedgerStore,
    JsonlLedgerStore,
    LedgerStore,
)
from repro.server.registry import DatasetEntry, DatasetRegistry
from repro.server.tenants import TenantBudgets

__all__ = [
    "PCORServer",
    "PCORClient",
    "ServerConfig",
    "ClusterConfig",
    "DatasetConfig",
    "ObservabilityConfig",
    "DatasetRegistry",
    "DatasetEntry",
    "TenantBudgets",
    "ReleaseCoalescer",
    "CoalescerClosed",
    "LedgerStore",
    "InMemoryLedgerStore",
    "JsonlLedgerStore",
    "TENANT_HEADER",
]

"""Shared HTTP plumbing for the PCOR serving tier.

:class:`~repro.server.app.PCORServer` (one process hosting engines) and
:class:`~repro.cluster.router.PCORRouter` (a thin proxy in front of a
worker fleet) speak the same JSON dialect: typed error payloads
``{"error": {"type", "message", "status"}}``, tenant headers, buffered
NODELAY responses, and a graceful drain window on shutdown.  This module
is that dialect, factored out of the original ``app.py`` handler so both
tiers serve byte-identical envelopes:

* :class:`JsonRequestHandler` — the request-handler core.  Subclasses
  implement ``_route_get`` / ``_route_post``; everything else (body
  draining, tenant parsing, JSON responses, error mapping, the
  per-request drain window) is shared.
* :class:`DrainState` — the shutdown drain barrier: counts in-flight
  requests, rejects late arrivals with a typed 503 (``Retry-After`` set),
  and lets ``/healthz`` through so probes can observe ``"draining"``.
* :func:`status_for` — exception class → HTTP status, shared so a payload
  proxied through the router maps exactly as one served directly.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Mapping, Optional
from urllib.parse import urlparse

from repro import __version__
from repro.obs.logs import log_event
from repro.exceptions import (
    PrivacyBudgetError,
    ReproError,
    ServerError,
    ShardUnavailableError,
    SpecError,
)

logger = logging.getLogger("repro.server")

#: Header naming the calling analyst.
TENANT_HEADER = "X-PCOR-Tenant"

#: Routes answered even while the drain window is closing (health probes
#: must be able to observe the ``"draining"`` status, not be refused).
HEALTH_PATH = "/healthz"


class _Draining(ServerError):
    """Request arrived after shutdown began (maps to 503; the client
    resurrects the public base, ServerError)."""

    #: Seconds a client should wait before retrying (``Retry-After``).
    retry_after = 1.0


class _BadRequest(SpecError):
    """Malformed request body/headers (maps to 400 like any SpecError)."""


#: Exception class → HTTP status for typed error payloads (first match in
#: iteration order wins, so subclasses precede their bases).
_STATUS_FOR = {
    _Draining: 503,
    ShardUnavailableError: 503,
    PrivacyBudgetError: 402,
    SpecError: 400,
    ServerError: 404,
}


def status_for(exc: Exception) -> int:
    """The HTTP status a typed error payload carries for ``exc``."""
    for cls, status in _STATUS_FOR.items():
        if isinstance(exc, cls):
            return status
    if isinstance(exc, ReproError):
        # The request was well-formed and admitted but the release failed
        # (no matching context, record outside the dataset, ...).
        return 422
    return 500


def query_number(query: Mapping[str, Any], key: str) -> Optional[float]:
    """One numeric query parameter (last occurrence wins), or ``None``.

    Shared by the server's and the router's debug routes; a non-numeric
    value is the caller's typo and maps to a typed 400.
    """
    values = query.get(key)
    if not values:
        return None
    try:
        return float(values[-1])
    except (TypeError, ValueError):
        raise _BadRequest(
            f"query parameter {key!r} must be a number, got {values[-1]!r}"
        ) from None


class DrainState:
    """The graceful-shutdown drain barrier, shared by server and router.

    Handler threads are daemonic and never joined by ``server_close()``,
    so shared state (ledgers, worker fleets) must not be torn down until
    every request that entered a handler has left it.  The window is
    counted per *request*, not per connection: keep-alive handler threads
    spend their life blocked in ``readline`` between requests, and
    counting connections would make shutdown wait on idle sockets.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active = 0
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    def begin(self, exempt: bool = False) -> None:
        """Admit one request into the window; 503s requests racing
        shutdown unless ``exempt`` (health probes)."""
        with self._cond:
            if self._draining and not exempt:
                raise _Draining(
                    "server is shutting down; no new requests are admitted"
                )
            self._active += 1

    def end(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active <= 0:
                self._cond.notify_all()

    def drain(self, timeout: float = 10.0) -> None:
        """Stop admitting requests and wait for active handlers to finish."""
        deadline = time.monotonic() + timeout
        with self._cond:
            self._draining = True
            log_event(logger, "drain", active=self._active)
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    logger.warning(
                        "shutdown drain timed out with %d request(s) still "
                        "active",
                        self._active,
                    )
                    break
                self._cond.wait(remaining)


class ThreadingJsonServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class JsonRequestHandler(BaseHTTPRequestHandler):
    """One request of the PCOR JSON dialect.

    All state lives on ``self.server.app`` — an object exposing ``drain``
    (a :class:`DrainState`) and ``_count(status)``.  Subclasses implement
    ``_route_get(raw)`` / ``_route_post(raw)`` and raise
    :mod:`repro.exceptions` classes; the base maps them to typed payloads.
    """

    server_version = f"pcor/{__version__}"
    protocol_version = "HTTP/1.1"
    # Buffered writes + TCP_NODELAY: a response leaves in one segment
    # instead of one write per header, and keep-alive clients never hit
    # the Nagle/delayed-ACK 40 ms stall.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # --------------------------------------------------------------- routes

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._guarded(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._guarded(self._route_post)

    def _route_get(self, raw: bytes) -> None:
        raise ServerError(f"no such route: GET {urlparse(self.path).path}")

    def _route_post(self, raw: bytes) -> None:
        raise ServerError(f"no such route: POST {urlparse(self.path).path}")

    def _guarded(self, route) -> None:
        """Run one routed request inside the app's drain window.

        Requests arriving after shutdown began get a typed 503 (with
        ``Retry-After``) — after the body is drained, so even the
        rejection leaves the keep-alive stream in sync.  ``/healthz`` is
        exempt from the rejection (it reports ``"draining"`` instead) but
        still counted, so teardown waits for its response too.
        """
        app = self._app()
        # Drain the body before anything else, even for requests that will
        # 404 or 503: unread body bytes left in rfile would be parsed as
        # the next request line, desyncing the keep-alive connection.
        raw = self._read_body()
        exempt = urlparse(self.path).path == HEALTH_PATH
        try:
            app.drain.begin(exempt=exempt)
        except Exception as exc:  # noqa: BLE001 — typed 503 payload
            self._respond_error(exc)
            return
        try:
            route(raw)
        except Exception as exc:  # noqa: BLE001 — mapped to typed payloads
            self._respond_error(exc)
        finally:
            app.drain.end()

    # -------------------------------------------------------------- helpers

    def _app(self):
        return self.server.app  # type: ignore[attr-defined]

    def _tenant(self) -> str:
        tenant = (self.headers.get(TENANT_HEADER) or "").strip()
        if not tenant:
            raise _BadRequest(
                f"missing {TENANT_HEADER} header: every analyst-facing route "
                "is tenant-scoped"
            )
        return tenant

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    @staticmethod
    def _parse_json(raw: bytes) -> Dict[str, Any]:
        if not raw:
            raise _BadRequest("request body is empty; expected a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        return body

    def _respond(
        self,
        status: int,
        payload: Mapping[str, Any],
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._respond_raw(
            status, json.dumps(payload).encode("utf-8"), headers=headers
        )

    def _respond_raw(
        self,
        status: int,
        data: bytes,
        headers: Optional[Mapping[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        """Send a pre-encoded body verbatim (the router's proxy
        pass-through; the Prometheus exposition overrides the type)."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)
        self._app()._count(status)

    def _respond_error(self, exc: Exception) -> None:
        status = status_for(exc)
        if status == 500:
            logger.exception("unhandled error serving %s", self.path)
        # Publish the nearest *public* class name so the client can
        # resurrect the exception (internal helpers like _BadRequest
        # surface as their public base, SpecError).
        name = next(
            base.__name__
            for base in type(exc).__mro__
            if not base.__name__.startswith("_")
        )
        payload = {
            "error": {
                "type": name,
                "message": str(exc),
                "status": status,
            }
        }
        headers = {}
        if status == 503:
            # Every 503 is transient (drain or a dead shard): tell clients
            # when to come back.  PCORClient honors this for GETs only.
            retry_after = getattr(exc, "retry_after", None) or 1.0
            headers["Retry-After"] = str(max(1, math.ceil(float(retry_after))))
        self._respond(status, payload, headers=headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

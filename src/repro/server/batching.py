"""The coalescing admission front end: batch concurrent releases.

PCOR's serving cost is dominated by detector (``f_M``) runs, and the
engine's batch path amortises them — ``submit_many``/``execute_many``
pre-profile starting contexts in one mask pass and fan whole releases out
across the :mod:`repro.runtime` backends.  But an HTTP server that answers
every request synchronously on its own handler thread never *has* a batch:
thirty-two concurrent single-record analysts are thirty-two lonely
``execute`` calls racing one admission lock and one fsync each.

:class:`ReleaseCoalescer` sits between the handlers and one dataset's
engine and manufactures the batch:

* handler threads :meth:`submit` validated ``(tenant, request)`` pairs and
  block on a per-request :class:`~concurrent.futures.Future`;
* one dedicated flusher thread per dataset collects whatever has
  accumulated — bounded by ``max_batch`` requests and a ``max_delay``
  linger after the first arrival (both config-driven via
  :class:`~repro.server.config.DatasetConfig`);
* each flush admits tenant + global budgets for the whole batch through
  one :meth:`TenantBudgets.admit_many <repro.server.tenants.TenantBudgets.admit_many>`
  call — per-request all-or-nothing, so one exhausted tenant gets its 402
  while the strangers batched alongside it proceed, and the admitted
  charges hit the WAL in one group-commit fsync;
* the admitted set executes through one
  :meth:`ReleaseEngine.execute_many <repro.service.engine.ReleaseEngine.execute_many>`
  call (per-request failures come back in place), and every future is
  completed — with a result or the exception the direct path would have
  raised.

**Grouping independence.**  ``execute_many`` plans one independent RNG
substream per request from the request seeds, so *where the flush
boundaries fall can never change a release*: a request coalesced into a
batch of 1, of ``k``, or of ``max_batch`` releases the bit-identical
context a lone ``engine.submit`` with the same seed would.  Batching is a
pure throughput lever; it is invisible in the results.

**Privacy semantics are unchanged.**  Admission still happens through the
same two-ledger :class:`~repro.server.tenants.TenantBudgets` path, charge
by charge, before any detector runs; coalescing only moves *when* the lock
is taken and the fsync happens.  The parallel-composition caveat of
``release_many`` extends to coalesced batches: requests in one flush are
accounted sequentially, exactly as if they had arrived one by one.

Shutdown drains: :meth:`close` flushes everything queued before returning,
so no future is ever left pending, and a :meth:`submit` that races
shutdown raises :class:`CoalescerClosed` — the server falls back to the
direct admit-then-execute path.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from statistics import median
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.exceptions import ReproError, ServerError
from repro.obs.logs import log_event
from repro.server.tenants import TenantBudgets
from repro.service.engine import ReleaseEngine, ReleaseRequest

logger = logging.getLogger("repro.server")

#: Flush sizes kept for the ``batch_size_p50`` metric (a recent window, so
#: the median tracks current traffic instead of averaging over the epoch).
SIZE_WINDOW = 1024


class CoalescerClosed(ServerError):
    """Raised by :meth:`ReleaseCoalescer.submit` once the coalescer is
    closed; callers should fall back to the direct release path."""


@dataclass
class _Pending:
    """One queued release: who asked, what they asked, where to answer."""

    tenant: str
    label: str
    request: ReleaseRequest
    future: Future
    enqueued_at: float


class ReleaseCoalescer:
    """Per-dataset request coalescer between HTTP handlers and the engine.

    Parameters
    ----------
    tenants:
        The dataset's two-ledger admission manager; every queued request is
        admitted through :meth:`TenantBudgets.admit_many` at flush time.
    engine_for:
        Zero-argument callable returning the dataset's
        :class:`~repro.service.engine.ReleaseEngine`.  Called on the first
        flush that admits anything — so a coalescing dataset still builds
        lazily, and a server hosting twenty of them still starts instantly.
    max_batch:
        Most requests one flush may carry (>= 1).
    max_delay_ms:
        Linger: after the first request of a flush arrives, the flusher
        waits up to this long for the batch to fill before executing.
        ``0`` flushes whatever a single dequeue finds (pure opportunistic
        batching, no added latency).
    name:
        Dataset name, for thread names and log lines.
    autostart:
        Spawn the flusher thread on first :meth:`submit` (the default).
        Tests pass ``False`` and drive :meth:`flush_now` directly to pin
        exact flush groupings.
    """

    def __init__(
        self,
        tenants: TenantBudgets,
        engine_for: Callable[[], ReleaseEngine],
        max_batch: int,
        max_delay_ms: float = 2.0,
        name: str = "dataset",
        autostart: bool = True,
    ) -> None:
        if int(max_batch) < 1:
            raise ServerError(f"max_batch must be >= 1, got {max_batch}")
        if not (0.0 <= float(max_delay_ms) <= 10_000.0):
            raise ServerError(
                f"max_delay_ms must be in [0, 10000], got {max_delay_ms}"
            )
        self.tenants = tenants
        self.engine_for = engine_for
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1000.0
        self.name = str(name)
        self.autostart = bool(autostart)
        self._cond = threading.Condition()
        self._queue: Deque[_Pending] = deque()
        self._thread: Optional[threading.Thread] = None
        self._closing = False
        # Metrics (all guarded by self._cond).
        self._flushes = 0
        self._flushed_requests = 0
        self._queue_wait_s = 0.0
        self._sizes: Deque[int] = deque(maxlen=SIZE_WINDOW)
        self._size_min: Optional[int] = None
        self._size_max: Optional[int] = None

    # ------------------------------------------------------------ enqueue

    def submit(self, tenant: str, label: str, request: ReleaseRequest) -> Future:
        """Queue one validated release; returns the future its handler
        thread should block on.

        The future resolves to the :class:`~repro.core.result.PCORResult`,
        or raises exactly what the direct path would have raised — a
        :class:`~repro.exceptions.PrivacyBudgetError` from admission, a
        :class:`~repro.exceptions.ReproError` from the release itself.

        Raises :class:`CoalescerClosed` (without queueing) once
        :meth:`close` has begun: nothing submitted after that point could
        be guaranteed a flush.
        """
        future: Future = Future()
        item = _Pending(
            tenant=str(tenant),
            label=str(label),
            request=request,
            future=future,
            enqueued_at=time.monotonic(),
        )
        with self._cond:
            if self._closing:
                raise CoalescerClosed(
                    f"coalescer for dataset {self.name!r} is shutting down"
                )
            self._queue.append(item)
            self._cond.notify_all()
            if self.autostart and (self._thread is None or not self._thread.is_alive()):
                self._thread = threading.Thread(
                    target=self._run,
                    name=f"pcor-coalescer-{self.name}",
                    daemon=True,
                )
                self._thread.start()
        return future

    # ------------------------------------------------------------- flusher

    def _run(self) -> None:
        """Flusher loop: collect, flush, repeat; drain fully on close."""
        while True:
            batch = self._collect()
            if batch is None:
                return
            try:
                self._flush(batch)
            except BaseException:  # noqa: BLE001 — the loop must survive
                # _flush already failed every future it was handed; this
                # catch only guards against bugs in the bookkeeping itself
                # so one poisoned batch cannot kill the flusher (stranding
                # every later request in the queue forever).
                logger.exception(
                    "coalescer flush for dataset %r failed", self.name
                )

    def _collect(self) -> Optional[List[_Pending]]:
        """Wait for work, linger for the batch to fill, pop one flush.

        Returns ``None`` when closing and the queue is fully drained.
        """
        with self._cond:
            while not self._queue and not self._closing:
                self._cond.wait()
            if not self._queue:
                return None  # closing, drained
            if (
                not self._closing
                and self.max_delay_s > 0
                and len(self._queue) < self.max_batch
            ):
                deadline = time.monotonic() + self.max_delay_s
                while len(self._queue) < self.max_batch and not self._closing:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            return self._pop_locked(self.max_batch)

    def _pop_locked(self, limit: int) -> List[_Pending]:
        n = min(limit, len(self._queue))
        batch = [self._queue.popleft() for _ in range(n)]
        now = time.monotonic()
        self._flushes += 1
        self._flushed_requests += n
        self._queue_wait_s += sum(now - item.enqueued_at for item in batch)
        self._sizes.append(n)
        self._size_min = n if self._size_min is None else min(self._size_min, n)
        self._size_max = n if self._size_max is None else max(self._size_max, n)
        return batch

    def _flush(self, batch: List[_Pending]) -> None:
        """Admit the batch (per-request all-or-nothing), execute the
        admitted set in one ``execute_many`` call, complete every future."""
        t_pop = time.monotonic()
        for item in batch:
            trace = item.request.trace
            if trace is not None:
                trace.add_span(
                    "queue.wait", item.enqueued_at, t_pop, dataset=self.name
                )
        try:
            errors = self.tenants.admit_many(
                [(item.tenant, item.label, item.request.spec.epsilon) for item in batch]
            )
            t_admit = time.monotonic()
            admitted: List[_Pending] = []
            for item, error in zip(batch, errors):
                if error is not None:
                    item.future.set_exception(error)
                else:
                    admitted.append(item)
                trace = item.request.trace
                if trace is not None:
                    # admit_many group-commits the WAL, so this span covers
                    # ledger admission *including* the fsync.
                    trace.add_span(
                        "admission",
                        t_pop,
                        t_admit,
                        batch=len(batch),
                        rejected=error is not None,
                    )
            if not admitted:
                self._log_flush(batch, 0, t_pop)
                return
            outcomes = self.engine_for().execute_many(
                [item.request for item in admitted], return_exceptions=True
            )
            for item, outcome in zip(admitted, outcomes):
                if isinstance(outcome, ReproError):
                    item.future.set_exception(outcome)
                else:
                    item.future.set_result(outcome)
            self._log_flush(batch, len(admitted), t_pop)
        except BaseException as exc:  # noqa: BLE001 — no future left pending
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            raise

    def _log_flush(self, batch: List[_Pending], admitted: int, started: float) -> None:
        if not logger.isEnabledFor(logging.INFO):
            return
        trace_ids = sorted(
            {
                item.request.trace.trace_id
                for item in batch
                if item.request.trace is not None
            }
        )
        log_event(
            logger,
            "flush",
            dataset=self.name,
            batch=len(batch),
            admitted=admitted,
            epsilon=round(
                sum(item.request.spec.epsilon for item in batch), 9
            ),
            duration_ms=round((time.monotonic() - started) * 1000.0, 3),
            trace_ids=trace_ids,
        )

    # ----------------------------------------------------------- test seam

    def flush_now(self, limit: Optional[int] = None) -> int:
        """Synchronously flush up to ``limit`` queued requests (all, when
        ``None``) on the calling thread; returns how many were flushed.

        The deterministic-grouping seam: tests construct the coalescer with
        ``autostart=False``, queue requests, and force flushes of exactly
        1, ``k`` or everything to prove grouping independence.
        """
        with self._cond:
            if not self._queue:
                return 0
            batch = self._pop_locked(
                len(self._queue) if limit is None else int(limit)
            )
        self._flush(batch)
        return len(batch)

    # ------------------------------------------------------------ shutdown

    def close(self, timeout: float = 30.0) -> None:
        """Drain the queue and stop the flusher (idempotent).

        Every request submitted before ``close`` began is flushed —
        admitted, executed, and its future completed — before this method
        returns; submissions racing the close raise
        :class:`CoalescerClosed` instead of queueing.  If the flusher
        thread fails to drain within ``timeout`` (or was never started),
        the remainder is flushed on the calling thread, so no future is
        ever left pending.
        """
        with self._cond:
            self._closing = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        # Whatever the flusher did not get to (never started, or timed
        # out): flush it here rather than strand the waiters.
        while self.flush_now(self.max_batch):
            pass

    def __enter__(self) -> "ReleaseCoalescer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- metrics

    def snapshot(self) -> Dict[str, Any]:
        """Batching counters for ``/v1/metrics`` (keys match the
        ``batch_*`` fields of
        :class:`~repro.service.engine.EngineMetrics`; same monotonicity
        contract)."""
        with self._cond:
            sizes = list(self._sizes)
            return {
                "batch_flushes": self._flushes,
                "batch_requests": self._flushed_requests,
                "batch_queue_depth": len(self._queue),
                "batch_queue_wait_s": self._queue_wait_s,
                "batch_size_min": self._size_min,
                "batch_size_p50": float(median(sizes)) if sizes else None,
                "batch_size_max": self._size_max,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cond:
            depth = len(self._queue)
        return (
            f"ReleaseCoalescer(dataset={self.name!r}, max_batch={self.max_batch}, "
            f"max_delay_ms={self.max_delay_s * 1000:g}, queued={depth}, "
            f"flushes={self._flushes})"
        )

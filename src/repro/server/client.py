"""A tiny stdlib client for the PCOR HTTP service.

:class:`PCORClient` speaks the ``/v1`` JSON API of
:class:`~repro.server.app.PCORServer` and resurrects the server's typed
error payloads as the original :mod:`repro.exceptions` classes — a 402
raises :class:`~repro.exceptions.PrivacyBudgetError` on the analyst's side
exactly as an in-process :meth:`ReleaseEngine.submit` would, so code moves
between the embedded and the served engine without changing its error
handling.

The client keeps one HTTP/1.1 keep-alive connection (with ``TCP_NODELAY``)
per instance and transparently reconnects if the server dropped it.  One
connection means one in-flight request: share a *server* between threads,
not a client — give each thread its own ``PCORClient``.

>>> client = PCORClient("http://127.0.0.1:8320", tenant="alice")
>>> client.release("salary", record_id=17,
...                spec={"detector": "lof", "detector_kwargs": {"k": 10},
...                      "sampler": "bfs", "epsilon": 0.2}, seed=42)
... # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Mapping, Optional, Union
from urllib.parse import urlparse

import repro.exceptions as _exceptions
from repro.exceptions import ReproError, ServerError
from repro.server.app import TENANT_HEADER
from repro.service.spec import PipelineSpec


class PCORClient:
    """Analyst-side handle on one PCOR server.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8320"`` (trailing slash tolerated).
    tenant:
        Value of the ``X-PCOR-Tenant`` header sent with every request.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(
        self, base_url: str, tenant: str = "default", timeout: float = 60.0
    ) -> None:
        self.base_url = str(base_url).rstrip("/")
        self.tenant = str(tenant)
        self.timeout = float(timeout)
        parsed = urlparse(self.base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServerError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------ endpoints

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def datasets(self) -> Dict[str, Any]:
        """Hosted datasets with their global-budget summaries."""
        return self._request("GET", "/v1/datasets")["datasets"]

    def budget(self, dataset: Optional[str] = None) -> Dict[str, Any]:
        """This tenant's budgets (one dataset, or all of them)."""
        path = "/v1/budget"
        if dataset is not None:
            path += f"?dataset={dataset}"
        return self._request("GET", path)

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def release(
        self,
        dataset: str,
        record_id: int,
        spec: Union[PipelineSpec, Mapping[str, Any]],
        seed: Optional[int] = None,
        starting_context: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run one budgeted release; returns ``{"result": ..., "budget": ...}``.

        ``spec`` may be a :class:`PipelineSpec` (serialized via ``to_dict``)
        or an equivalent plain mapping.  Raises the same exception classes
        the embedded engine would — :class:`PrivacyBudgetError` once this
        tenant (or the dataset) is exhausted, :class:`SpecError` for a bad
        pipeline, and so on.
        """
        if isinstance(spec, PipelineSpec):
            spec = spec.to_dict()
        body: Dict[str, Any] = {"record_id": int(record_id), "spec": dict(spec)}
        if seed is not None:
            body["seed"] = int(seed)
        if starting_context is not None:
            body["starting_context"] = int(starting_context)
        return self._request("POST", f"/v1/datasets/{dataset}/release", body)

    # ------------------------------------------------------------ transport

    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )
        try:
            conn.connect()
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise ServerError(
                f"cannot reach {self.base_url}: {exc}"
            ) from None
        self._conn = conn
        return conn

    def _request(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {TENANT_HEADER: self.tenant, "Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # One retry for *idempotent* requests only: a keep-alive peer may
        # have dropped an idle connection.  A release POST is never
        # resent — the server may have admitted (and fsync'd) the charge
        # before the connection died, and a blind retry would spend the
        # analyst's epsilon twice.  Check /v1/budget before resubmitting.
        retries = (0, 1) if method == "GET" else (0,)
        for attempt in retries:
            conn = self._conn if self._conn is not None else self._connect()
            try:
                conn.request(method, path, body=data, headers=headers)
                response = conn.getresponse()
                status = response.status
                raw = response.read()
                break
            except (http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt < retries[-1]:
                    continue
                raise ServerError(
                    f"cannot reach {self.base_url + path}: {exc}"
                ) from None
        if status >= 400:
            raise _error_from(status, raw)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError:
            raise ServerError(
                f"{self.base_url + path} returned invalid JSON"
            ) from None
        if not isinstance(payload, dict):
            raise ServerError(
                f"{self.base_url + path} returned a non-object payload"
            )
        return payload

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PCORClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PCORClient(base_url={self.base_url!r}, tenant={self.tenant!r})"


def _error_from(status: int, raw: bytes) -> ReproError:
    """Rebuild the server's typed error as its original exception class."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        error = payload["error"]
        type_name = str(error["type"])
        message = str(error["message"])
    except Exception:  # noqa: BLE001 — not our JSON; fall back to HTTP text
        return ServerError(f"HTTP {status}: {raw[:200]!r}")
    cls = getattr(_exceptions, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ServerError(f"HTTP {status} [{type_name}]: {message}")

"""A tiny stdlib client for the PCOR HTTP service.

:class:`PCORClient` speaks the ``/v1`` JSON API of
:class:`~repro.server.app.PCORServer` and resurrects the server's typed
error payloads as the original :mod:`repro.exceptions` classes — a 402
raises :class:`~repro.exceptions.PrivacyBudgetError` on the analyst's side
exactly as an in-process :meth:`ReleaseEngine.submit` would, so code moves
between the embedded and the served engine without changing its error
handling.

The client keeps one HTTP/1.1 keep-alive connection (with ``TCP_NODELAY``)
per instance and transparently reconnects if the server dropped it.  One
connection means one in-flight request: share a *server* between threads,
not a client — give each thread its own ``PCORClient``, or use
:meth:`PCORClient.release_many`, which fans a batch of releases out over
its own pool of keep-alive connections (and is what makes a coalescing
server see a batch at all).

>>> client = PCORClient("http://127.0.0.1:8320", tenant="alice")
>>> client.release("salary", record_id=17,
...                spec={"detector": "lof", "detector_kwargs": {"k": 10},
...                      "sampler": "bfs", "epsilon": 0.2}, seed=42)
... # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import queue
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union
from urllib.parse import urlparse

import repro.exceptions as _exceptions
from repro.exceptions import ReproError, ServerError
from repro.server.app import TENANT_HEADER
from repro.service.spec import PipelineSpec


class PCORClient:
    """Analyst-side handle on one PCOR server.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8320"`` (trailing slash tolerated).
    tenant:
        Value of the ``X-PCOR-Tenant`` header sent with every request.
    timeout:
        Per-request socket timeout in seconds.
    retry_503:
        How many times an *idempotent GET* answered 503-with-``Retry-After``
        is retried after waiting (capped) for the advertised delay.  A
        sharded router 503s while a crashed worker respawns and during
        shutdown drain — both transient by design, so budget/metrics/
        dataset reads ride them out.  Release **POSTs are never blindly
        resent**, 503 or not: the server (or the worker behind a router)
        may have admitted — and fsync'd — the charge before the response
        was lost, and a blind retry would spend the analyst's epsilon
        twice.  Check ``/v1/budget`` before resubmitting a release.
    max_retry_after_s:
        Cap on each ``Retry-After`` wait (a server asking for a minute
        should not stall an interactive client that long).
    """

    def __init__(
        self,
        base_url: str,
        tenant: str = "default",
        timeout: float = 60.0,
        retry_503: int = 2,
        max_retry_after_s: float = 2.0,
    ) -> None:
        self.base_url = str(base_url).rstrip("/")
        self.tenant = str(tenant)
        self.timeout = float(timeout)
        self.retry_503 = max(0, int(retry_503))
        self.max_retry_after_s = float(max_retry_after_s)
        parsed = urlparse(self.base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServerError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------ endpoints

    def health(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("GET", "/healthz", timeout=timeout)

    def healthz(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The full ``/healthz`` body: status, version, hosted datasets,
        ``uptime_s``, ``rss_bytes``, and the active trace-sampling config
        under ``observability``.  Errors surface as their original typed
        exception classes exactly like every other endpoint (a *draining*
        server still answers 200 with ``"status": "draining"``; only an
        unreachable one raises :class:`~repro.exceptions.ServerError`)."""
        return self._request("GET", "/healthz", timeout=timeout)

    def prometheus_metrics(self, timeout: Optional[float] = None) -> str:
        """The Prometheus text exposition served by
        ``/v1/metrics/prometheus`` (raw text, not JSON)."""
        return self._request_text("GET", "/v1/metrics/prometheus", timeout=timeout)

    def datasets(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Hosted datasets with their global-budget summaries."""
        return self._request("GET", "/v1/datasets", timeout=timeout)["datasets"]

    def budget(
        self, dataset: Optional[str] = None, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """This tenant's budgets (one dataset, or all of them)."""
        path = "/v1/budget"
        if dataset is not None:
            path += f"?dataset={dataset}"
        return self._request("GET", path, timeout=timeout)

    def metrics(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics", timeout=timeout)

    def debug_profile(
        self,
        seconds: Optional[float] = None,
        hz: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Sample the server for ``seconds`` and return folded stacks.

        ``GET /v1/debug/profile`` — idempotent (sampling is read-only), so
        it inherits the transport-retry and 503/``Retry-After`` policies
        of every other GET.  The server blocks for the whole sampling
        window before responding; when ``timeout`` is not given, the
        socket timeout is widened to cover ``seconds`` so a long profile
        doesn't trip the client-wide default.  Against a router the
        profile covers the whole fleet (``router;``/``shard<N>;`` roots
        and a pre-rendered ``folded_text``).
        """
        params = []
        if seconds is not None:
            params.append(f"seconds={float(seconds):g}")
        if hz is not None:
            params.append(f"hz={float(hz):g}")
        path = "/v1/debug/profile" + ("?" + "&".join(params) if params else "")
        if timeout is None:
            timeout = self.timeout + (float(seconds) if seconds else 60.0)
        return self._request("GET", path, timeout=timeout)

    def debug_events(
        self, n: Optional[int] = None, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The server's last ``n`` structured events
        (``GET /v1/debug/events``; fleet-merged when aimed at a router)."""
        path = "/v1/debug/events" + (f"?n={int(n)}" if n is not None else "")
        return self._request("GET", path, timeout=timeout)

    def release(
        self,
        dataset: str,
        record_id: int,
        spec: Union[PipelineSpec, Mapping[str, Any]],
        seed: Optional[int] = None,
        starting_context: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run one budgeted release; returns ``{"result": ..., "budget": ...}``.

        ``spec`` may be a :class:`PipelineSpec` (serialized via ``to_dict``)
        or an equivalent plain mapping.  Raises the same exception classes
        the embedded engine would — :class:`PrivacyBudgetError` once this
        tenant (or the dataset) is exhausted, :class:`SpecError` for a bad
        pipeline, and so on.  ``timeout`` overrides the client-level socket
        timeout for this one request — a release against a coalescing
        server parks in a queue before it executes, so an aggressive
        client-wide timeout can be relaxed exactly where it matters.
        """
        body = self._release_body(record_id, spec, seed, starting_context)
        return self._request(
            "POST", f"/v1/datasets/{dataset}/release", body, timeout=timeout
        )

    def append(
        self,
        dataset: str,
        records: Sequence[Mapping[str, Any]],
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Append records to a served dataset; returns the append summary.

        The response carries the new ``dataset_version``, the fresh
        ``record_ids`` assigned to the appended rows, and how many cached
        profiles the append invalidated.  Like a release POST, an append is
        never blindly resent on a transport error — the server may have
        committed the append before the connection died, and replaying it
        would insert the records twice.  Check ``n_records`` (via a release
        response or a fresh append of nothing-new) before retrying.
        """
        body = {"records": [dict(r) for r in records]}
        return self._request(
            "POST", f"/v1/datasets/{dataset}/append", body, timeout=timeout
        )

    def release_many(
        self,
        dataset: str,
        records: Sequence[int],
        spec: Union[PipelineSpec, Mapping[str, Any]],
        seeds: Optional[Sequence[Optional[int]]] = None,
        concurrency: int = 8,
        timeout: Optional[float] = None,
        return_errors: bool = False,
    ) -> List[Any]:
        """Issue one release per record id, concurrently, in record order.

        One :class:`PCORClient` holds one keep-alive connection — one
        in-flight request.  This helper fans ``len(records)`` releases out
        over a pool of ``min(concurrency, len(records))`` pooled
        connections (same server, same tenant), which is what lets a
        coalescing server (``max_batch > 1``) actually see concurrent
        requests from a single analyst and batch them.

        Parameters
        ----------
        records:
            Record ids to release, one request each.
        spec:
            One pipeline spec shared by every request (serialized once).
        seeds:
            Optional per-record seeds (same length as ``records``).
            ``None`` entries — or omitting the argument — leave seeding to
            the server (fresh entropy per request).
        concurrency:
            Upper bound on pooled connections (and in-flight requests).
        timeout:
            Per-request socket timeout override for every request issued.
        return_errors:
            ``False`` (default): raise the first failure, in record order,
            after every request has settled — admitted charges are never
            silently abandoned mid-flight.  ``True``: failed requests
            yield their exception object in place of a response dict.

        Each release is still admitted and accounted individually by the
        server — sequential composition over the batch, exactly as if the
        requests had arrived one by one.
        """
        if isinstance(spec, PipelineSpec):
            spec = spec.to_dict()
        spec = dict(spec)
        if seeds is None:
            seeds = [None] * len(records)
        if len(seeds) != len(records):
            raise ServerError(
                f"seeds ({len(seeds)}) and records ({len(records)}) must "
                "have equal lengths"
            )
        if int(concurrency) < 1:
            raise ServerError(f"concurrency must be >= 1, got {concurrency}")
        if not records:
            return []
        n_workers = min(int(concurrency), len(records))
        pool: "queue.SimpleQueue[PCORClient]" = queue.SimpleQueue()
        clients = [
            PCORClient(
                self.base_url,
                tenant=self.tenant,
                timeout=self.timeout,
                retry_503=self.retry_503,
                max_retry_after_s=self.max_retry_after_s,
            )
            for _ in range(n_workers)
        ]
        for client in clients:
            pool.put(client)

        def one(record_id: int, seed: Optional[int]) -> Any:
            client = pool.get()
            try:
                return client.release(
                    dataset, record_id, spec, seed=seed, timeout=timeout
                )
            except Exception as exc:  # noqa: BLE001 — settled below, in order
                return exc
            finally:
                pool.put(client)

        try:
            with ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix="pcor-client"
            ) as executor:
                outcomes = list(executor.map(one, records, seeds))
        finally:
            for client in clients:
                client.close()
        if not return_errors:
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        return outcomes

    @staticmethod
    def _release_body(
        record_id: int,
        spec: Union[PipelineSpec, Mapping[str, Any]],
        seed: Optional[int],
        starting_context: Optional[int],
    ) -> Dict[str, Any]:
        if isinstance(spec, PipelineSpec):
            spec = spec.to_dict()
        body: Dict[str, Any] = {"record_id": int(record_id), "spec": dict(spec)}
        if seed is not None:
            body["seed"] = int(seed)
        if starting_context is not None:
            body["starting_context"] = int(starting_context)
        return body

    # ------------------------------------------------------------ transport

    def _connect(self, timeout: float) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=timeout
        )
        try:
            conn.connect()
            conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise ServerError(
                f"cannot reach {self.base_url}: {exc}"
            ) from None
        self._conn = conn
        return conn

    def _request_text(
        self, method: str, path: str, timeout: Optional[float] = None
    ) -> str:
        """A request whose success body is plain text, not JSON (the
        Prometheus exposition); errors still carry JSON typed payloads."""
        return self._request(method, path, timeout=timeout, parse_json=False)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
        parse_json: bool = True,
    ) -> Any:
        effective = self.timeout if timeout is None else float(timeout)
        data = None
        headers = {TENANT_HEADER: self.tenant, "Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Two retry layers, both for *idempotent* GETs only.  Transport: a
        # keep-alive peer may have dropped an idle connection — reconnect
        # once.  Service: a 503 carrying Retry-After (router shard down,
        # shutdown drain) is transient by contract — wait (capped) and ask
        # again, up to retry_503 times.  A release POST is never resent on
        # either layer — the server may have admitted (and fsync'd) the
        # charge before the connection died or the 503 raced the drain,
        # and a blind retry would spend the analyst's epsilon twice.
        # Check /v1/budget before resubmitting a release.
        transport_retries = (0, 1) if method == "GET" else (0,)
        service_attempts = self.retry_503 if method == "GET" else 0
        while True:
            for attempt in transport_retries:
                conn = (
                    self._conn
                    if self._conn is not None
                    else self._connect(effective)
                )
                try:
                    # The keep-alive socket may carry an earlier request's
                    # timeout; pin this request's own before writing.
                    if conn.sock is not None:
                        conn.sock.settimeout(effective)
                    conn.request(method, path, body=data, headers=headers)
                    response = conn.getresponse()
                    status = response.status
                    retry_after = response.getheader("Retry-After")
                    raw = response.read()
                    break
                except (http.client.HTTPException, OSError) as exc:
                    self.close()
                    if attempt < transport_retries[-1]:
                        continue
                    raise ServerError(
                        f"cannot reach {self.base_url + path}: {exc}"
                    ) from None
            if status == 503 and service_attempts > 0 and retry_after:
                try:
                    delay = float(retry_after)
                except ValueError:
                    break  # HTTP-date form: not worth parsing, give up
                service_attempts -= 1
                time.sleep(max(0.0, min(delay, self.max_retry_after_s)))
                continue
            break
        if status >= 400:
            raise _error_from(status, raw)
        if not parse_json:
            return raw.decode("utf-8")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError:
            raise ServerError(
                f"{self.base_url + path} returned invalid JSON"
            ) from None
        if not isinstance(payload, dict):
            raise ServerError(
                f"{self.base_url + path} returned a non-object payload"
            )
        return payload

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "PCORClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PCORClient(base_url={self.base_url!r}, tenant={self.tenant!r})"


def _error_from(status: int, raw: bytes) -> ReproError:
    """Rebuild the server's typed error as its original exception class."""
    try:
        payload = json.loads(raw.decode("utf-8"))
        error = payload["error"]
        type_name = str(error["type"])
        message = str(error["message"])
    except Exception:  # noqa: BLE001 — not our JSON; fall back to HTTP text
        return ServerError(f"HTTP {status}: {raw[:200]!r}")
    cls = getattr(_exceptions, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ServerError(f"HTTP {status} [{type_name}]: {message}")

"""Durable privacy ledgers: the write-ahead log behind the budget.

The search-log literature's core lesson (Götz et al., *Privacy in Search
Logs*) is that a DP release service is only as private as its accounting:
the guarantee quantifies over every query ever answered, so a ledger that
evaporates on restart silently resets epsilon to zero.  This module is the
durability layer the server's :class:`~repro.server.tenants.TenantBudgets`
writes through:

* :class:`LedgerStore` — the tiny protocol: ``append`` one charge record,
  ``replay`` them all, ``close``.
* :class:`InMemoryLedgerStore` — process-lifetime only; for tests, examples
  and benchmarks where durability is out of scope.
* :class:`JsonlLedgerStore` — an append-only JSONL write-ahead ledger.
  Every ``append`` writes one JSON line and (by default) ``fsync``\\ s it
  before returning, so an admitted charge survives a crash of the process
  *and* the page cache.  ``open`` replays the file, and a torn final line
  (the classic partial-write crash signature) is truncated away — a torn
  record was never acknowledged, so dropping it under-counts nothing.

Records are plain JSON objects.  The store is schema-agnostic except for
one reserved key, ``"v"`` (record-format version, stamped on write); the
tenant/dataset/epsilon schema lives with :class:`TenantBudgets`.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.exceptions import LedgerError

#: Record-format version stamped into every persisted charge record.
LEDGER_FORMAT_VERSION = 1


@runtime_checkable
class LedgerStore(Protocol):
    """Append-only durable store of privacy-charge records."""

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably persist one charge record (called under the budget lock,
        after the in-memory ledgers admitted the charge)."""
        ...

    def append_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Durably persist a batch of charge records, in order.

        Optional protocol extension (callers fall back to per-record
        :meth:`append` when a store lacks it): a store that can group-commit
        should make the whole batch durable with *one* sync, because
        fsync-per-charge is what caps a coalesced admission path.  Partial
        persistence after a crash must only ever be a *prefix* of the batch
        (append order), never a subset.
        """
        ...

    def replay(self) -> List[Dict[str, Any]]:
        """Every record persisted so far, in append order."""
        ...

    def close(self) -> None:
        """Release file handles; the store must not be appended to after."""
        ...


class InMemoryLedgerStore:
    """A ledger that lives exactly as long as the process.

    Useful for tests and throughput benchmarks; a real deployment that
    cares about its privacy guarantee wants :class:`JsonlLedgerStore`.
    """

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def append(self, record: Mapping[str, Any]) -> None:
        with self._lock:
            self._records.append(dict(record))

    def append_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        with self._lock:
            self._records.extend(dict(r) for r in records)

    def replay(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._records]

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryLedgerStore(records={len(self)})"


class JsonlLedgerStore:
    """Append-only JSONL write-ahead ledger with crash replay.

    Parameters
    ----------
    path:
        The ledger file.  Created (along with parent directories) if
        absent; an existing file is replayed on open.
    fsync:
        ``True`` (the default) fsyncs after every appended line, so a
        charge acknowledged to the analyst is on stable storage before the
        release runs.  ``False`` trades that guarantee for throughput
        (flush-only) — acceptable for benchmarks, not for production.

    Torn-tail handling: if the final line of an existing file lacks its
    newline terminator — the only state a crash mid-append can leave,
    since the newline is the last byte of every write — the file is
    truncated back to the last complete record and replay proceeds (the
    torn record was never acknowledged, so dropping it under-counts
    nothing).  A *complete* line that fails to parse, anywhere in the
    file, cannot be explained by a crashed append and raises
    :class:`LedgerError` instead of silently forgetting spend.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._recover()
        try:
            self._fh = open(self.path, "ab")
        except OSError as exc:
            raise LedgerError(f"cannot open ledger {self.path}: {exc}") from None

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Replay an existing file, truncating a torn final record."""
        if not self.path.exists():
            return
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise LedgerError(f"cannot read ledger {self.path}: {exc}") from None
        good_end = 0
        records: List[Dict[str, Any]] = []
        torn = False
        for line_end, line in _iter_lines(raw):
            if line_end is None:
                # No trailing newline: the append never completed.  This is
                # the *only* state a crashed single-write append can leave
                # behind (the newline is the last byte of every write), so
                # it is the only state recovery may discard.
                torn = True
                break
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("not an object")
            except ValueError:
                # A complete, newline-terminated line that is not a valid
                # record was fully written — and possibly acknowledged, so
                # its release may have run.  Dropping it would under-count
                # privacy spend; that is corruption, not a torn append.
                raise LedgerError(
                    f"ledger {self.path} record {len(records) + 1} is "
                    f"corrupt: {line[:80]!r}; refusing to truncate recorded "
                    "privacy spend"
                ) from None
            records.append(record)
            good_end = line_end
        if torn:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        self._records = records

    # ---------------------------------------------------------- interface

    def append(self, record: Mapping[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Group-commit: the whole batch is one write and one fsync.

        A coalesced admission path charges many analysts per flush;
        syncing once per *flush* instead of once per charge is most of the
        durable-path win.  A crash mid-write leaves a newline-terminated
        prefix of the batch plus (at most) one torn final line — exactly
        the state :meth:`_recover` already handles, and since nothing was
        acknowledged, replaying the prefix only over-counts spend (the
        conservative direction).
        """
        if not records:
            return
        payloads = []
        for record in records:
            payload = dict(record)
            payload.setdefault("v", LEDGER_FORMAT_VERSION)
            payloads.append(payload)
        data = b"".join(
            json.dumps(p, separators=(",", ":"), sort_keys=True).encode("utf-8")
            + b"\n"
            for p in payloads
        )
        with self._lock:
            if self._fh.closed:
                raise LedgerError(f"ledger {self.path} is closed")
            try:
                self._fh.write(data)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
            except OSError as exc:
                raise LedgerError(
                    f"failed to persist charge to {self.path}: {exc}"
                ) from None
            self._records.extend(payloads)

    def replay(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._records]

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __enter__(self) -> "JsonlLedgerStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JsonlLedgerStore(path={str(self.path)!r}, records={len(self)}, "
            f"fsync={self.fsync})"
        )


def _iter_lines(raw: bytes) -> Iterator[tuple]:
    """Yield ``(end_offset_or_None, text)`` per line; ``None`` marks a line
    missing its newline terminator (a torn tail)."""
    start = 0
    while start < len(raw):
        idx = raw.find(b"\n", start)
        if idx == -1:
            yield None, raw[start:].decode("utf-8", errors="replace")
            return
        yield idx + 1, raw[start:idx].decode("utf-8", errors="replace")
        start = idx + 1

"""Declarative server configuration (``pcor serve --config server.toml``).

A :class:`ServerConfig` names everything one PCOR server hosts: the bind
address, the ledger policy, and one :class:`DatasetConfig` per dataset —
its source (a built-in generator or a CSV file), its dataset-global budget,
and its per-tenant quota policy.  Like :class:`~repro.service.spec.PipelineSpec`
it validates eagerly, round-trips through ``to_dict``/``from_dict``, and
loads from JSON or TOML via the shared
:func:`~repro.service.spec.load_mapping_file` helper:

.. code-block:: toml

    [server]
    host = "127.0.0.1"
    port = 8320
    ledger = "jsonl"          # or "memory"
    ledger_dir = "ledgers"    # one JSONL WAL per dataset

    [datasets.salary]
    source = "salary_reduced" # any built-in generator, or "csv"
    records = 2000
    seed = 7
    budget = 5.0              # dataset-global OCDP budget
    tenant_budget = 1.0       # default per-analyst quota
    [datasets.salary.tenant_budgets]
    alice = 2.0               # per-analyst overrides
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.data.csvio import read_csv
from repro.data.table import Dataset
from repro.exceptions import SpecError
from repro.service.spec import load_mapping_file

#: Ledger store kinds a config may name.
LEDGER_KINDS = ("jsonl", "memory")

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8320


def _dataset_factories() -> Dict[str, Any]:
    # Local import: the experiments package is heavy and the harness module
    # imports half the library; only pay for it when a generator is named.
    from repro.experiments.harness import DATASET_FACTORIES

    return DATASET_FACTORIES


@dataclass(frozen=True)
class DatasetConfig:
    """One hosted dataset: source, size, budgets, execution knobs.

    Parameters
    ----------
    name:
        Registry key — the ``{name}`` in ``/v1/datasets/{name}/release``.
    source:
        A built-in generator name (``salary_reduced``, ``homicide_reduced``,
        ``salary_full``, ``homicide_full``) or ``"csv"`` (then ``path`` and
        ``metric`` describe the file, loaded via
        :func:`repro.data.csvio.read_csv`).
    records / seed:
        Generator parameters (ignored for CSV sources).
    path / metric:
        CSV file location and numeric-metric column (CSV sources only).
    budget:
        Dataset-global OCDP budget (``None`` = unbudgeted — tenant quotas,
        if any, still apply).
    tenant_budget / tenant_budgets:
        Default per-analyst quota and per-analyst overrides.
    profile_capacity / backend / workers:
        Passed through to the dataset's :class:`ReleaseEngine` (``None``
        keeps the engine defaults).
    max_batch / max_delay_ms:
        Request-coalescing knobs.  ``max_batch > 1`` puts a
        :class:`~repro.server.batching.ReleaseCoalescer` between the HTTP
        handlers and this dataset's engine: concurrent releases queue, a
        flusher collects up to ``max_batch`` of them (lingering at most
        ``max_delay_ms`` after the first arrives), admits them as one
        batch and executes them through one ``execute_many`` call.
        ``max_batch = 1`` (the default) disables coalescing — every
        request takes the direct admit-then-execute path, exactly the
        pre-batching server behavior.  The linger only ever *adds* up to
        ``max_delay_ms`` to an isolated request's latency; under load the
        queue refills before the flusher returns and the linger never
        triggers.
    """

    name: str
    source: str = "salary_reduced"
    records: int = 2000
    seed: int = 0
    path: Optional[str] = None
    metric: Optional[str] = None
    budget: Optional[float] = None
    tenant_budget: Optional[float] = None
    tenant_budgets: Mapping[str, float] = field(default_factory=dict)
    profile_capacity: Optional[int] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    max_batch: int = 1
    max_delay_ms: float = 2.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", str(self.name))
        object.__setattr__(self, "source", str(self.source))
        object.__setattr__(self, "records", int(self.records))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(
            self,
            "tenant_budgets",
            {str(k): float(v) for k, v in dict(self.tenant_budgets).items()},
        )
        if not self.name or "/" in self.name:
            raise SpecError(f"dataset name {self.name!r} must be non-empty and slash-free")
        if self.source == "csv":
            if not self.path:
                raise SpecError(f"dataset {self.name!r}: csv source needs a 'path'")
            if not self.metric:
                raise SpecError(
                    f"dataset {self.name!r}: csv source needs a 'metric' column name"
                )
        elif self.source not in _dataset_factories():
            raise SpecError(
                f"dataset {self.name!r}: unknown source {self.source!r}; "
                f"use 'csv' or one of {sorted(_dataset_factories())}"
            )
        elif self.records < 1:
            raise SpecError(f"dataset {self.name!r}: records must be >= 1")
        for label, value in (
            ("budget", self.budget),
            ("tenant_budget", self.tenant_budget),
        ):
            if value is not None:
                value = float(value)
                object.__setattr__(self, label, value)
                if not (value > 0.0 and math.isfinite(value)):
                    raise SpecError(
                        f"dataset {self.name!r}: {label} must be positive and "
                        f"finite, got {value}"
                    )
        for tenant, quota in self.tenant_budgets.items():
            if not (quota > 0.0 and math.isfinite(quota)):
                raise SpecError(
                    f"dataset {self.name!r}: tenant {tenant!r} budget must be "
                    f"positive and finite, got {quota}"
                )
        if self.backend is not None:
            from repro.runtime import available_backends

            key = str(self.backend).lower()
            if key not in available_backends():
                raise SpecError(
                    f"dataset {self.name!r}: unknown backend {self.backend!r}; "
                    f"available: {available_backends()}"
                )
            object.__setattr__(self, "backend", key)
        if self.workers is not None and int(self.workers) < 1:
            raise SpecError(f"dataset {self.name!r}: workers must be >= 1")
        object.__setattr__(self, "max_batch", int(self.max_batch))
        if self.max_batch < 1:
            raise SpecError(
                f"dataset {self.name!r}: max_batch must be >= 1 "
                f"(1 disables coalescing), got {self.max_batch}"
            )
        object.__setattr__(self, "max_delay_ms", float(self.max_delay_ms))
        if not (0.0 <= self.max_delay_ms <= 10_000.0):
            raise SpecError(
                f"dataset {self.name!r}: max_delay_ms must be in [0, 10000], "
                f"got {self.max_delay_ms}"
            )

    def build_dataset(self) -> Dataset:
        """Materialise the dataset this config describes."""
        if self.source == "csv":
            return read_csv(self.path, metric=self.metric)
        factory = _dataset_factories()[self.source]
        return factory(n_records=self.records, seed=self.seed)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"source": self.source}
        if self.source == "csv":
            out["path"] = self.path
            out["metric"] = self.metric
        else:
            out["records"] = self.records
            out["seed"] = self.seed
        for key in ("budget", "tenant_budget", "profile_capacity", "backend", "workers"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.max_batch != 1:
            out["max_batch"] = self.max_batch
        if self.max_delay_ms != 2.0:
            out["max_delay_ms"] = self.max_delay_ms
        if self.tenant_budgets:
            out["tenant_budgets"] = dict(self.tenant_budgets)
        return out


#: Worker-manager kinds a cluster config may name (``process`` spawns real
#: subprocesses; ``thread`` hosts workers in-process — tests and dev).
MANAGER_KINDS = ("process", "thread")


@dataclass(frozen=True)
class ClusterConfig:
    """The ``[cluster]`` section: sharded serving behind a router.

    With ``workers >= 1``, ``pcor serve`` starts a
    :class:`~repro.cluster.router.PCORRouter` plus ``workers``
    release-worker processes instead of a single :class:`PCORServer`.
    Datasets are partitioned over workers by consistent hashing of the
    dataset name, so each dataset's budget ledger has exactly one writer.

    Parameters
    ----------
    workers:
        Release-worker count.  ``0`` (the default when the section is
        absent) keeps single-process serving.
    heartbeat_interval_s:
        How often each worker reports to the router.
    heartbeat_timeout_s:
        Heartbeat silence after which the router declares a worker dead
        (must exceed the interval — a single delayed beat is not a death).
    respawn:
        Whether the router's supervisor restarts dead workers.  A
        respawned worker replays its datasets' ledgers before accepting
        traffic, so budget truth survives the crash (with a durable
        ledger; an in-memory ledger forgets spend with its process).
    manager:
        Where workers run: ``"process"`` (local subprocesses via
        ``LocalProcessManager``) or ``"thread"`` (in-process, for tests).
        The :class:`~repro.cluster.manager.WorkerManager` protocol leaves
        room for remote managers later.
    """

    workers: int = 0
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 5.0
    respawn: bool = True
    manager: str = "process"

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(
            self, "heartbeat_interval_s", float(self.heartbeat_interval_s)
        )
        object.__setattr__(
            self, "heartbeat_timeout_s", float(self.heartbeat_timeout_s)
        )
        object.__setattr__(self, "respawn", bool(self.respawn))
        object.__setattr__(self, "manager", str(self.manager).lower())
        if self.workers < 0:
            raise SpecError(f"cluster workers must be >= 0, got {self.workers}")
        if not (self.heartbeat_interval_s > 0.0):
            raise SpecError(
                "cluster heartbeat_interval_s must be > 0, "
                f"got {self.heartbeat_interval_s}"
            )
        if not (self.heartbeat_timeout_s > self.heartbeat_interval_s):
            raise SpecError(
                "cluster heartbeat_timeout_s must exceed heartbeat_interval_s "
                f"({self.heartbeat_interval_s}), got {self.heartbeat_timeout_s}"
            )
        if self.manager not in MANAGER_KINDS:
            raise SpecError(
                f"unknown cluster manager {self.manager!r}; "
                f"use one of {MANAGER_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"workers": self.workers}
        if self.heartbeat_interval_s != 1.0:
            out["heartbeat_interval_s"] = self.heartbeat_interval_s
        if self.heartbeat_timeout_s != 5.0:
            out["heartbeat_timeout_s"] = self.heartbeat_timeout_s
        if not self.respawn:
            out["respawn"] = False
        if self.manager != "process":
            out["manager"] = self.manager
        return out


#: Structured-log output formats the config may name.
LOG_FORMATS = ("text", "json")


@dataclass(frozen=True)
class ObservabilityConfig:
    """The ``[observability]`` section: tracing, logging, slow-request dumps.

    Parameters
    ----------
    enabled:
        Master switch for trace contexts.  ``False`` removes every
        per-request tracing branch from the hot path (the metrics
        registry and ``/v1/metrics`` stay on — they are load-bearing).
    sample_rate:
        Fraction of traces that record spans, decided deterministically
        from the trace id so router and workers always agree.  Unsampled
        requests keep a trace id for log correlation but skip all span
        timing.  ``1.0`` traces everything (the default — the overhead
        benchmark gates it at <3% p50).
    slow_request_ms:
        Releases slower than this dump their full span timeline to the
        log at WARNING as a ``slow_request`` event.
    log_format:
        ``"text"`` (terse ``key=value`` lines) or ``"json"`` (one
        parseable object per line); ``pcor serve --log-format``
        overrides it.
    events_buffer:
        Capacity of the in-memory ring of recent structured events
        behind ``GET /v1/debug/events``.  ``0`` disables the ring (the
        endpoint then 404s); the default keeps the last 512 events.
    """

    enabled: bool = True
    sample_rate: float = 1.0
    slow_request_ms: float = 1000.0
    log_format: str = "text"
    events_buffer: int = 512

    def __post_init__(self) -> None:
        object.__setattr__(self, "enabled", bool(self.enabled))
        object.__setattr__(self, "sample_rate", float(self.sample_rate))
        object.__setattr__(self, "slow_request_ms", float(self.slow_request_ms))
        object.__setattr__(self, "log_format", str(self.log_format).lower())
        object.__setattr__(self, "events_buffer", int(self.events_buffer))
        if not (0.0 <= self.sample_rate <= 1.0):
            raise SpecError(
                f"observability sample_rate must be in [0, 1], "
                f"got {self.sample_rate}"
            )
        if not (self.slow_request_ms >= 0.0 and math.isfinite(self.slow_request_ms)):
            raise SpecError(
                "observability slow_request_ms must be finite and >= 0, "
                f"got {self.slow_request_ms}"
            )
        if self.log_format not in LOG_FORMATS:
            raise SpecError(
                f"unknown log_format {self.log_format!r}; "
                f"use one of {LOG_FORMATS}"
            )
        if self.events_buffer < 0:
            raise SpecError(
                "observability events_buffer must be >= 0 (0 disables the "
                f"event ring), got {self.events_buffer}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if not self.enabled:
            out["enabled"] = False
        if self.sample_rate != 1.0:
            out["sample_rate"] = self.sample_rate
        if self.slow_request_ms != 1000.0:
            out["slow_request_ms"] = self.slow_request_ms
        if self.log_format != "text":
            out["log_format"] = self.log_format
        if self.events_buffer != 512:
            out["events_buffer"] = self.events_buffer
        return out


@dataclass(frozen=True)
class ServerConfig:
    """Everything one ``pcor serve`` process hosts.

    Programmatic construction permits an empty ``datasets`` mapping — a
    cluster worker whose shard happens to hold no datasets still needs a
    servable (if idle) config.  :meth:`from_dict` (and hence every config
    file) still rejects it: a top-level server hosting nothing is a typo.
    """

    datasets: Mapping[str, DatasetConfig] = field(default_factory=dict)
    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    ledger: str = "memory"
    ledger_dir: Optional[str] = None
    fsync: bool = True
    cluster: Optional[ClusterConfig] = None
    observability: Optional[ObservabilityConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "host", str(self.host))
        object.__setattr__(self, "port", int(self.port))
        object.__setattr__(self, "ledger", str(self.ledger).lower())
        object.__setattr__(self, "fsync", bool(self.fsync))
        coerced: Dict[str, DatasetConfig] = {}
        for name, cfg in dict(self.datasets).items():
            if isinstance(cfg, DatasetConfig):
                coerced[str(name)] = cfg
            elif isinstance(cfg, Mapping):
                body = dict(cfg)
                body.pop("name", None)
                coerced[str(name)] = DatasetConfig(name=str(name), **body)
            else:
                raise SpecError(
                    f"dataset {name!r} config must be a mapping, "
                    f"got {type(cfg).__name__}"
                )
        object.__setattr__(self, "datasets", coerced)
        if not (0 <= self.port <= 65535):
            raise SpecError(f"port must be in [0, 65535], got {self.port}")
        if self.ledger not in LEDGER_KINDS:
            raise SpecError(
                f"unknown ledger kind {self.ledger!r}; use one of {LEDGER_KINDS}"
            )
        if self.ledger == "jsonl" and not self.ledger_dir:
            raise SpecError("ledger = 'jsonl' needs a 'ledger_dir'")
        if self.cluster is not None and not isinstance(self.cluster, ClusterConfig):
            if not isinstance(self.cluster, Mapping):
                raise SpecError(
                    "'cluster' must be a mapping of cluster options, "
                    f"got {type(self.cluster).__name__}"
                )
            object.__setattr__(self, "cluster", ClusterConfig(**self.cluster))
        if self.observability is not None and not isinstance(
            self.observability, ObservabilityConfig
        ):
            if not isinstance(self.observability, Mapping):
                raise SpecError(
                    "'observability' must be a mapping of observability "
                    f"options, got {type(self.observability).__name__}"
                )
            object.__setattr__(
                self, "observability", ObservabilityConfig(**self.observability)
            )

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "server": {
                "host": self.host,
                "port": self.port,
                "ledger": self.ledger,
                "fsync": self.fsync,
            },
            "datasets": {
                name: cfg.to_dict() for name, cfg in self.datasets.items()
            },
        }
        if self.ledger_dir is not None:
            out["server"]["ledger_dir"] = self.ledger_dir
        if self.cluster is not None:
            out["cluster"] = self.cluster.to_dict()
        if self.observability is not None:
            out["observability"] = self.observability.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServerConfig":
        if not isinstance(data, Mapping):
            raise SpecError(
                f"server config must be a mapping, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"server", "datasets", "cluster", "observability"})
        if unknown:
            raise SpecError(
                f"unknown server config section(s) {unknown}; "
                "known: ['cluster', 'datasets', 'observability', 'server']"
            )
        server = dict(data.get("server", {}))
        known = {f.name for f in fields(cls)} - {"datasets", "cluster", "observability"}
        bad = sorted(set(server) - known)
        if bad:
            raise SpecError(
                f"unknown [server] field(s) {bad}; known: {sorted(known)}"
            )
        datasets = data.get("datasets", {})
        if not isinstance(datasets, Mapping):
            raise SpecError("'datasets' must map names to dataset configs")
        if not datasets:
            raise SpecError("server config hosts no datasets")
        cluster = data.get("cluster")
        if cluster is not None:
            if not isinstance(cluster, Mapping):
                raise SpecError(
                    "'cluster' must be a mapping of cluster options, "
                    f"got {type(cluster).__name__}"
                )
            bad = sorted(set(cluster) - {f.name for f in fields(ClusterConfig)})
            if bad:
                raise SpecError(
                    f"unknown [cluster] field(s) {bad}; known: "
                    f"{sorted(f.name for f in fields(ClusterConfig))}"
                )
            cluster = ClusterConfig(**cluster)
        observability = data.get("observability")
        if observability is not None:
            if not isinstance(observability, Mapping):
                raise SpecError(
                    "'observability' must be a mapping of observability "
                    f"options, got {type(observability).__name__}"
                )
            bad = sorted(
                set(observability) - {f.name for f in fields(ObservabilityConfig)}
            )
            if bad:
                raise SpecError(
                    f"unknown [observability] field(s) {bad}; known: "
                    f"{sorted(f.name for f in fields(ObservabilityConfig))}"
                )
            observability = ObservabilityConfig(**observability)
        return cls(
            datasets=datasets,
            cluster=cluster,
            observability=observability,
            **server,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ServerConfig":
        """Load a server config from a ``.json`` or ``.toml`` file."""
        return cls.from_dict(load_mapping_file(path, what="server config"))

"""Per-analyst budgets layered on the dataset-global accountant.

The paper's deployment model (Sections 1, 6.3) is a data owner answering
repeated budgeted queries from analysts.  Two ledgers govern every query:

* the **dataset-global** :class:`~repro.mechanisms.accounting.PrivacyAccountant`
  — the formal OCDP guarantee of the dataset, shared with the
  :class:`~repro.service.engine.ReleaseEngine` so engine-side views
  (``/v1/budget``, ``EngineMetrics``) and admission can never disagree;
* a **per-tenant** accountant — the owner's quota policy, bounding how much
  of the global budget any single analyst may burn.

:class:`TenantBudgets` admits a charge against *both atomically or
neither*: all tenant-path mutations are serialised under one manager lock,
the tenant ledger is pre-checked there, the global accountant (which other
threads may charge directly) is charged through its own atomic
check-then-append, and only then is the tenant ledger appended — a global
rejection therefore leaves the tenant ledger untouched, and a tenant
rejection happens before the global ledger is touched at all.

Durability: every admitted charge is appended to the
:class:`~repro.server.ledger.LedgerStore` *before* :meth:`admit` returns
(fsync-per-charge with the JSONL store), and a fresh manager replays the
store on construction — so a restarted server resumes with every tenant
exactly as exhausted as it was.  The charge is persisted before the
release executes; a release that subsequently fails still consumed its
epsilon (the conservative direction — an aborted mechanism run may leak).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import LedgerError, PrivacyBudgetError
from repro.mechanisms.accounting import PrivacyAccountant
from repro.server.ledger import InMemoryLedgerStore, LedgerStore


class TenantBudgets:
    """Atomic two-ledger admission with a durable write-ahead store.

    Parameters
    ----------
    accountant:
        The dataset-global accountant (usually the engine's own; ``None``
        leaves the dataset globally unbudgeted and only tenant quotas
        apply).
    default_budget:
        Budget granted to any tenant not named in ``budgets``.  ``None``
        means unnamed tenants are only bounded by the global ledger.
    budgets:
        Per-tenant overrides, ``{tenant: budget}``.
    store:
        Durable charge store.  Existing records are replayed into both
        ledgers on construction (without re-checking budgets — the store
        is authoritative).  Defaults to a fresh in-memory store.
    dataset:
        Name stamped into persisted records (one store may be shared by
        one dataset; the name makes records self-describing for audits).
    """

    def __init__(
        self,
        accountant: Optional[PrivacyAccountant] = None,
        default_budget: Optional[float] = None,
        budgets: Optional[Mapping[str, float]] = None,
        store: Optional[LedgerStore] = None,
        dataset: str = "default",
    ) -> None:
        if default_budget is not None and not (
            default_budget > 0.0 and math.isfinite(default_budget)
        ):
            raise PrivacyBudgetError(
                f"default tenant budget must be positive and finite, "
                f"got {default_budget}"
            )
        self.accountant = accountant
        self.default_budget = default_budget
        self.dataset = str(dataset)
        self.store = store if store is not None else InMemoryLedgerStore()
        self._budgets = {str(k): float(v) for k, v in dict(budgets or {}).items()}
        self._tenants: Dict[str, PrivacyAccountant] = {}
        # Spend of quota-less tenants (no accountant to ask), kept so the
        # metrics breakdown still covers them.
        self._unbounded_spend: Dict[str, float] = {}
        self._rejections: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._replay()

    # ------------------------------------------------------------- replay

    def _replay(self) -> None:
        """Reconstruct both ledgers from the durable store."""
        for record in self.store.replay():
            try:
                tenant = str(record["tenant"])
                label = str(record.get("label", ""))
                epsilon = float(record["epsilon"])
            except (KeyError, TypeError, ValueError) as exc:
                raise LedgerError(
                    f"unreplayable ledger record {record!r}: {exc}"
                ) from None
            if self.accountant is not None:
                self.accountant.restore([(label, epsilon)])
            ledger = self._tenant_ledger(tenant)
            if ledger is not None:
                ledger.restore([(label, epsilon)])
            else:
                self._unbounded_spend[tenant] = (
                    self._unbounded_spend.get(tenant, 0.0) + epsilon
                )

    # ------------------------------------------------------------ ledgers

    def budget_for(self, tenant: str) -> Optional[float]:
        """The quota this tenant is entitled to (``None`` = unbounded)."""
        return self._budgets.get(str(tenant), self.default_budget)

    def _tenant_ledger(self, tenant: str) -> Optional[PrivacyAccountant]:
        """The tenant's accountant, created lazily (``None`` if unbounded).

        Only ever mutated under ``self._lock`` — that exclusivity is what
        makes the pre-check in :meth:`admit` sound.
        """
        budget = self.budget_for(tenant)
        if budget is None:
            return None
        ledger = self._tenants.get(tenant)
        if ledger is None:
            ledger = PrivacyAccountant(budget)
            self._tenants[tenant] = ledger
        return ledger

    # ---------------------------------------------------------- admission

    def admit(self, tenant: str, label: str, epsilon: float) -> None:
        """Atomically charge ``epsilon`` to the tenant *and* global ledgers.

        Raises :class:`PrivacyBudgetError` — and charges nothing anywhere —
        if either ledger lacks room.  On success the charge is durably
        persisted before returning.
        """
        [error] = self.admit_many([(tenant, label, epsilon)])
        if error is not None:
            raise error

    def admit_many(
        self, charges: Sequence[Tuple[str, str, float]]
    ) -> List[Optional[PrivacyBudgetError]]:
        """Admit a batch of ``(tenant, label, epsilon)`` charges at once.

        Admission is *per charge* all-or-nothing, exactly as
        :meth:`admit` — but the whole batch holds the manager lock once and
        the admitted charges reach the durable store in one group-commit
        ``append_many`` (a single fsync with the JSONL store), which is
        what makes a coalesced admission front end worth having.

        Returns one entry per charge, in order: ``None`` for an admitted
        charge, the :class:`PrivacyBudgetError` it would have raised
        otherwise.  One exhausted tenant therefore cannot reject the
        strangers batched alongside it, and every admitted charge is
        persisted exactly once — before this method returns.
        """
        outcomes: List[Optional[PrivacyBudgetError]] = []
        records: List[dict] = []
        with self._lock:
            for tenant, label, epsilon in charges:
                tenant = str(tenant)
                epsilon = float(epsilon)
                error = self._admit_one_locked(tenant, str(label), epsilon)
                outcomes.append(error)
                if error is None:
                    records.append(
                        {
                            "tenant": tenant,
                            "dataset": self.dataset,
                            "label": str(label),
                            "epsilon": epsilon,
                        }
                    )
            if records:
                append_many = getattr(self.store, "append_many", None)
                if append_many is not None:
                    append_many(records)
                else:  # minimal LedgerStore implementations
                    for record in records:
                        self.store.append(record)
        return outcomes

    def _admit_one_locked(
        self, tenant: str, label: str, epsilon: float
    ) -> Optional[PrivacyBudgetError]:
        """Charge both in-memory ledgers for one admission (caller holds
        the lock and owns durable persistence); returns the rejection
        instead of raising so batch callers can keep going."""
        if not (epsilon > 0.0 and math.isfinite(epsilon)):
            return PrivacyBudgetError(
                f"charge must be positive and finite, got {epsilon}"
            )
        ledger = self._tenant_ledger(tenant)
        # Pre-check the tenant ledger: exclusively managed under this
        # lock, so a passing check cannot be invalidated before the
        # append below.
        if ledger is not None and not ledger.can_charge(epsilon):
            self._rejections[tenant] = self._rejections.get(tenant, 0) + 1
            return PrivacyBudgetError(
                f"tenant {tenant!r} charge of {epsilon:.6g} exceeds its "
                f"remaining budget {ledger.remaining:.6g} "
                f"(quota {ledger.budget:.6g})"
            )
        # The global accountant may be charged concurrently by callers
        # outside the tenant layer, so go through its own atomic
        # check-then-append rather than trusting a pre-check.
        if self.accountant is not None:
            try:
                self.accountant.charge(label, epsilon)
            except PrivacyBudgetError as exc:
                self._rejections[tenant] = self._rejections.get(tenant, 0) + 1
                return exc
        if ledger is not None:
            ledger.charge(label, epsilon)  # cannot fail: pre-checked
        else:
            self._unbounded_spend[tenant] = (
                self._unbounded_spend.get(tenant, 0.0) + epsilon
            )
        return None

    # ------------------------------------------------------------ introspection

    def spent(self, tenant: str) -> float:
        """Epsilon this tenant has spent so far."""
        tenant = str(tenant)
        with self._lock:
            ledger = self._tenants.get(tenant)
            if ledger is None:
                return self._unbounded_spend.get(tenant, 0.0)
        return ledger.spent

    def remaining(self, tenant: str) -> Optional[float]:
        """Tenant quota still unspent (``None`` = unbounded).

        Read-only: probing an unseen tenant (anyone can put any name in the
        header) must not allocate ledger state, or a scraper could grow the
        tenant table — and the metrics breakdown — without bound.
        """
        tenant = str(tenant)
        budget = self.budget_for(tenant)
        if budget is None:
            return None
        with self._lock:
            ledger = self._tenants.get(tenant)
        return budget if ledger is None else ledger.remaining

    def spend_by_tenant(self) -> Dict[str, float]:
        """``{tenant: epsilon_spent}`` across every tenant seen so far."""
        with self._lock:
            out = dict(self._unbounded_spend)
            for tenant, ledger in self._tenants.items():
                out[tenant] = ledger.spent
        return out

    def rejections(self) -> Dict[str, int]:
        """``{tenant: admission_rejections}`` (monotonic)."""
        with self._lock:
            return dict(self._rejections)

    def tenants(self) -> List[str]:
        """Every tenant with recorded spend, sorted."""
        return sorted(self.spend_by_tenant())

    def describe(self, tenant: str) -> Dict[str, Any]:
        """JSON-able budget snapshot for one tenant (the ``/v1/budget`` body)."""
        quota = self.budget_for(tenant)
        snapshot: Dict[str, Any] = {
            "tenant": str(tenant),
            "budget": quota,
            "spent": self.spent(tenant),
            "remaining": self.remaining(tenant),
        }
        if self.accountant is not None:
            snapshot["dataset_budget"] = self.accountant.budget
            snapshot["dataset_spent"] = self.accountant.spent
            snapshot["dataset_remaining"] = self.accountant.remaining
        return snapshot

    def close(self) -> None:
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantBudgets(dataset={self.dataset!r}, "
            f"tenants={len(self._tenants)}, default={self.default_budget}, "
            f"store={type(self.store).__name__})"
        )

"""Declarative pipeline specs: a PCOR pipeline as data.

A :class:`PipelineSpec` names every knob of one release pipeline — detector,
sampler, utility, budget, sensitivity mode, plus per-component kwargs — and
validates all of it *eagerly* against the component registries
(:mod:`repro.outliers.base`, :mod:`repro.core.sampling.base`,
:mod:`repro.core.utility`), so a bad spec fails at construction time, long
before any data is touched.

Specs built from registry *names* round-trip losslessly through
``to_dict``/``from_dict``, ``to_json``, and ``from_file`` (JSON or TOML), so
a pipeline can live in a config file, a request body, or an audit log.  For
in-process use the component fields also accept live objects — a detector or
sampler *instance*, or a callable utility factory — which is how the
:class:`~repro.core.pcor.PCOR` facade rides the same engine; such specs are
not serializable and ``to_dict`` says so.
"""

from __future__ import annotations

import inspect
import json
import math
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

import repro.core.sampling  # noqa: F401  (registers the four samplers)
from repro.core.sampling.base import Sampler, make_sampler, sampler_info
from repro.core.utility import (
    UtilityFunction,
    UtilitySpec,
    make_utility,
    utility_info,
    utility_needs_starting_context,
)
from repro.core.verification import OutlierVerifier
from repro.exceptions import ReproError, SpecError
from repro.outliers.base import OutlierDetector, detector_factory, make_detector

# Detector subclasses register themselves on import; pull the package in so a
# spec naming e.g. "lof" validates even if the caller never imported it.
import repro.outliers  # noqa: F401  (registration side effect)


def load_mapping_file(path: Union[str, Path], what: str = "spec") -> Dict[str, Any]:
    """Load a ``.json`` or ``.toml`` file that must hold a single mapping.

    Shared by :meth:`PipelineSpec.from_file` and the server's
    :class:`~repro.server.config.ServerConfig`, so every declarative
    artefact in the system speaks the same two formats with the same
    errors.
    """
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".json":
        with open(p, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SpecError(f"invalid JSON in {p}: {exc}") from None
    elif suffix == ".toml":
        import tomllib

        with open(p, "rb") as fh:
            try:
                data = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"invalid TOML in {p}: {exc}") from None
    else:
        raise SpecError(
            f"unsupported {what} format {suffix!r} for {p}; use .json or .toml"
        )
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{what} file {p} must hold a mapping, got {type(data).__name__}"
        )
    return dict(data)


def _check_kwargs(factory: Callable, kwargs: Mapping[str, Any], what: str) -> None:
    """Reject kwargs the factory's signature cannot bind."""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins/C callables: nothing to check
        return
    try:
        sig.bind_partial(**kwargs)
    except TypeError as exc:
        raise SpecError(f"bad {what}_kwargs {dict(kwargs)!r}: {exc}") from None


@dataclass(frozen=True)
class PipelineSpec:
    """One release pipeline, declarable as data.

    Parameters
    ----------
    detector:
        Registry name (serializable) or an :class:`OutlierDetector` instance.
    sampler:
        Registry name (serializable) or a :class:`Sampler` instance.  For an
        instance, ``n_samples`` is read off the instance and
        ``sampler_kwargs`` must be empty.
    utility:
        Registry name (serializable) or a callable factory
        ``(verifier, record_id, starting_bits, **utility_kwargs)``.
    epsilon:
        Total OCDP budget of one release under this spec.
    n_samples:
        Candidate-pool size for named samplers (the paper's ``n``).
    half_sensitivity:
        Use the paper's halved-sensitivity Exponential mechanism.
    detector_kwargs / sampler_kwargs / utility_kwargs:
        Extra keyword arguments for the named factories; validated against
        the factory signatures at construction time.
    utility_needs_start:
        Explicit override of the utility's needs-starting-context metadata —
        the escape hatch for callable utilities the registry knows nothing
        about (``None`` defers to registry metadata / the callable's
        ``needs_starting_context`` attribute).
    backend / workers:
        Execution backend for requests carrying this spec (registry name:
        ``serial`` / ``thread`` / ``process``) and its worker count.  The
        engine honours these for *request-batch fan-out* in ``submit_many``
        when it was built without an explicit backend (the inner
        profile-batch fan-out always follows the engine-level backend);
        execution never changes released contexts — any backend at any
        worker count is bit-identical to serial for the same seed.
    """

    detector: Union[str, OutlierDetector]
    sampler: Union[str, Sampler] = "bfs"
    utility: UtilitySpec = "population_size"
    epsilon: float = 0.2
    n_samples: int = 50
    half_sensitivity: bool = False
    detector_kwargs: Mapping[str, Any] = field(default_factory=dict)
    sampler_kwargs: Mapping[str, Any] = field(default_factory=dict)
    utility_kwargs: Mapping[str, Any] = field(default_factory=dict)
    utility_needs_start: Optional[bool] = None
    backend: Optional[str] = None
    workers: Optional[int] = None

    # ----------------------------------------------------------- validation

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "half_sensitivity", bool(self.half_sensitivity))
        object.__setattr__(self, "detector_kwargs", dict(self.detector_kwargs))
        object.__setattr__(self, "sampler_kwargs", dict(self.sampler_kwargs))
        object.__setattr__(self, "utility_kwargs", dict(self.utility_kwargs))

        if not (self.epsilon > 0.0 and math.isfinite(self.epsilon)):
            raise SpecError(
                f"epsilon must be positive and finite, got {self.epsilon}"
            )

        self._validate_detector()
        self._validate_sampler()
        self._validate_utility()
        self._validate_backend()

        if int(self.n_samples) < 1:
            raise SpecError(f"n_samples must be >= 1, got {self.n_samples}")
        object.__setattr__(self, "n_samples", int(self.n_samples))

    def _validate_detector(self) -> None:
        if isinstance(self.detector, str):
            try:
                factory = detector_factory(self.detector)
            except ReproError as exc:
                raise SpecError(str(exc)) from None
            _check_kwargs(factory, self.detector_kwargs, "detector")
        elif isinstance(self.detector, OutlierDetector):
            if self.detector_kwargs:
                raise SpecError(
                    "detector_kwargs only apply to a detector named by "
                    "registry key, not to a detector instance"
                )
        else:
            raise SpecError(
                f"detector must be a registry name or an OutlierDetector "
                f"instance, got {type(self.detector).__name__}"
            )

    def _validate_sampler(self) -> None:
        if isinstance(self.sampler, str):
            try:
                info = sampler_info(self.sampler)
            except ReproError as exc:
                raise SpecError(str(exc)) from None
            _check_kwargs(
                info.factory,
                {"n_samples": self.n_samples, **self.sampler_kwargs},
                "sampler",
            )
        elif isinstance(self.sampler, Sampler):
            if self.sampler_kwargs:
                raise SpecError(
                    "sampler_kwargs only apply to a sampler named by "
                    "registry key, not to a sampler instance"
                )
            # Keep accounting coherent: the pool size is the instance's.
            object.__setattr__(self, "n_samples", self.sampler.n_samples)
        else:
            raise SpecError(
                f"sampler must be a registry name or a Sampler instance, "
                f"got {type(self.sampler).__name__}"
            )

    def _validate_backend(self) -> None:
        if self.backend is not None:
            # Lazy import: the runtime package registers its backends on
            # import and never imports this module eagerly.
            from repro.runtime import available_backends

            key = str(self.backend).lower()
            if key not in available_backends():
                raise SpecError(
                    f"unknown backend {self.backend!r}; "
                    f"available: {available_backends()}"
                )
            object.__setattr__(self, "backend", key)
        if self.workers is not None:
            workers = int(self.workers)
            if workers < 1:
                raise SpecError(f"workers must be >= 1, got {self.workers}")
            object.__setattr__(self, "workers", workers)

    def _validate_utility(self) -> None:
        if isinstance(self.utility, str):
            try:
                info = utility_info(self.utility)
            except ReproError as exc:
                raise SpecError(str(exc)) from None
            _check_kwargs(info.factory, self.utility_kwargs, "utility")
        elif not callable(self.utility):
            raise SpecError(
                f"utility must be a registry name or a callable factory, "
                f"got {type(self.utility).__name__}"
            )

    # ------------------------------------------------------------- metadata

    @property
    def is_serializable(self) -> bool:
        """True iff every component is addressed by registry name."""
        return (
            isinstance(self.detector, str)
            and isinstance(self.sampler, str)
            and isinstance(self.utility, str)
        )

    def sampler_requires_starting_context(self) -> bool:
        """Registry/instance metadata: must the sampler start from a valid context?"""
        if isinstance(self.sampler, str):
            return sampler_info(self.sampler).requires_starting_context
        return bool(self.sampler.requires_starting_context)

    def utility_requires_starting_context(self) -> bool:
        """Registry/attribute/override metadata for the utility (Satellite fix:
        callable factories advertise via a ``needs_starting_context`` attribute
        or the spec's explicit ``utility_needs_start`` flag)."""
        return utility_needs_starting_context(self.utility, self.utility_needs_start)

    def needs_starting_context(self) -> bool:
        """Does a release under this spec need a starting context at all?"""
        return (
            self.sampler_requires_starting_context()
            or self.utility_requires_starting_context()
        )

    # ------------------------------------------------------------- builders

    def build_detector(self) -> OutlierDetector:
        """The spec's detector (instantiating named factories)."""
        if isinstance(self.detector, OutlierDetector):
            return self.detector
        return make_detector(self.detector, **self.detector_kwargs)

    def build_sampler(self) -> Sampler:
        """The spec's sampler (instantiating named factories)."""
        if isinstance(self.sampler, Sampler):
            return self.sampler
        return make_sampler(
            self.sampler, n_samples=self.n_samples, **self.sampler_kwargs
        )

    def build_utility(
        self,
        verifier: OutlierVerifier,
        record_id: int,
        starting_bits: Optional[int],
    ) -> UtilityFunction:
        """The spec's utility, bound to one verifier/record/starting context."""
        if isinstance(self.utility, str):
            return make_utility(
                self.utility, verifier, record_id, starting_bits,
                **self.utility_kwargs,
            )
        return self.utility(verifier, record_id, starting_bits, **self.utility_kwargs)

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, Any]:
        """JSON/TOML-able mapping; raises for instance-bearing specs."""
        if not self.is_serializable:
            raise SpecError(
                "spec holds in-memory components (detector/sampler instance "
                "or callable utility) and cannot be serialized; use registry "
                "names instead"
            )
        out: Dict[str, Any] = {
            "detector": self.detector,
            "sampler": self.sampler,
            "utility": self.utility,
            "epsilon": self.epsilon,
            "n_samples": self.n_samples,
            "half_sensitivity": self.half_sensitivity,
            "detector_kwargs": dict(self.detector_kwargs),
            "sampler_kwargs": dict(self.sampler_kwargs),
            "utility_kwargs": dict(self.utility_kwargs),
        }
        if self.utility_needs_start is not None:
            out["utility_needs_start"] = self.utility_needs_start
        if self.backend is not None:
            out["backend"] = self.backend
        if self.workers is not None:
            out["workers"] = self.workers
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        """Build (and fully validate) a spec from a plain mapping."""
        if not isinstance(data, Mapping):
            raise SpecError(f"spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {unknown}; known: {sorted(known)}"
            )
        if "detector" not in data:
            raise SpecError("spec is missing the required 'detector' field")
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "PipelineSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        return cls.from_dict(load_mapping_file(path, what="spec"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        det = self.detector if isinstance(self.detector, str) else self.detector.name
        smp = self.sampler if isinstance(self.sampler, str) else self.sampler.name
        util = (
            self.utility
            if isinstance(self.utility, str)
            else getattr(self.utility, "__name__", repr(self.utility))
        )
        return (
            f"PipelineSpec(detector={det!r}, sampler={smp!r}, utility={util!r}, "
            f"epsilon={self.epsilon}, n_samples={self.n_samples})"
        )

"""Service layer: registries + declarative specs + the long-lived engine.

The spec-driven public API (see the README's "Service API" section):

>>> from repro import PipelineSpec, ReleaseEngine, ReleaseRequest, salary_reduced
>>> engine = ReleaseEngine(salary_reduced(n_records=2000, seed=7), budget=1.0)
>>> spec = PipelineSpec(detector="lof", detector_kwargs={"k": 10},
...                     sampler="bfs", n_samples=50, epsilon=0.2)
>>> result = engine.submit(ReleaseRequest(record_id=17, spec=spec, seed=42))  # doctest: +SKIP

Component registries live next to their base classes
(:mod:`repro.outliers.base`, :mod:`repro.core.sampling.base`,
:mod:`repro.core.utility`) and are re-exported here for convenience.
"""

from repro.core.sampling.base import (
    SamplerInfo,
    available_samplers,
    make_sampler,
    register_sampler,
    sampler_info,
)
from repro.core.utility import (
    UtilityInfo,
    available_utilities,
    make_utility,
    register_utility,
    utility_info,
    utility_needs_starting_context,
)
from repro.outliers.base import (
    available_detectors,
    detector_factory,
    make_detector,
    register_detector,
)
from repro.service.engine import EngineMetrics, ReleaseEngine, ReleaseRequest
from repro.service.spec import PipelineSpec

__all__ = [
    "PipelineSpec",
    "ReleaseEngine",
    "ReleaseRequest",
    "EngineMetrics",
    # registries
    "SamplerInfo",
    "UtilityInfo",
    "available_detectors",
    "available_samplers",
    "available_utilities",
    "detector_factory",
    "make_detector",
    "make_sampler",
    "make_utility",
    "register_detector",
    "register_sampler",
    "register_utility",
    "sampler_info",
    "utility_info",
    "utility_needs_starting_context",
]

"""The long-lived release engine: budgeted, multi-pipeline PCOR service.

The paper frames PCOR as a service a data owner runs for analysts — repeated
budgeted queries over one dataset (Sections 1 and 6.3).  This module is that
service layer:

* :class:`ReleaseRequest` — one structured query: record, pipeline spec,
  optional starting context, seed.
* :class:`ReleaseEngine` — a long-lived object bound to one dataset.  It
  owns the shared :class:`~repro.data.masks.PredicateMaskIndex`, one
  :class:`~repro.core.profiles.ProfileStore`-backed verifier per distinct
  detector configuration, and (optionally) a
  :class:`~repro.mechanisms.accounting.PrivacyAccountant` charged *before*
  any data is touched.  Because the spec travels with the request, one
  engine serves releases with different detectors, samplers, utilities and
  epsilons against one dataset without ever rebuilding caches.
* :class:`EngineMetrics` — aggregated service counters (profile hit/miss,
  uncached detector runs, per-phase wall time and backend task counts) for
  dashboards and logs.

Batch execution runs on a pluggable :mod:`repro.runtime` backend
(``serial`` / ``thread`` / ``process``).  Randomness is planned as one
substream per request (spawned from the request seeds in request order), so
every backend at any worker count releases bit-identical contexts to the
serial path for the same seeds.

The legacy entry points are thin wrappers over this engine:
:class:`repro.core.pcor.PCOR` submits requests carrying its fixed spec, and
:class:`repro.analysis.session.ReleaseSession` is a budgeted engine plus a
result log.  Identical seeds release identical contexts through every path.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.context.context import Context
from repro.core.profiles import DEFAULT_CAPACITY, ProfileStore, detector_fingerprint
from repro.core.result import PCORResult
from repro.core.sampling.base import Sampler
from repro.core.starting import find_starting_context
from repro.core.verification import OutlierVerifier
from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.exceptions import (
    ExecutionError,
    PrivacyBudgetError,
    ReproError,
    SamplingError,
    VerificationError,
)
from repro.mechanisms.accounting import PrivacyAccountant, epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.obs.profiler import set_engine_phase
from repro.rng import RngLike, ensure_rng
from repro.runtime import (
    ExecutionBackend,
    make_backend,
    plan_task_rngs,
    resolve_backend,
    rng_from_token,
)
from repro.service.spec import PipelineSpec


@dataclass(frozen=True)
class ReleaseRequest:
    """One structured release query against a :class:`ReleaseEngine`.

    Attributes
    ----------
    record_id:
        The queried outlier ``V``.
    spec:
        The pipeline to run — a :class:`PipelineSpec` (a plain mapping is
        coerced through :meth:`PipelineSpec.from_dict`).
    starting_context:
        Optional valid context to start graph samplers from; ``None`` lets
        the engine search for one.
    seed:
        RNG seed/generator for this release.  A single :meth:`submit` draws
        from it directly; :meth:`ReleaseEngine.submit_many` instead spawns
        one independent child substream per request carrying the same
        generator (in request order), so one seed still reproduces a whole
        batch — bit-identically on every execution backend at any worker
        count.
    trace:
        Optional :class:`~repro.obs.trace.Trace` context this release
        belongs to.  Excluded from equality/hash/repr: two requests with
        the same query are the same request regardless of who is
        watching.  Tracing never touches the RNG stream, so a traced
        release is bit-identical to an untraced one.
    """

    record_id: int
    spec: Union[PipelineSpec, Mapping]
    starting_context: Union[None, int, Context] = None
    seed: RngLike = None
    trace: Optional[Any] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "record_id", int(self.record_id))
        if not isinstance(self.spec, PipelineSpec):
            object.__setattr__(self, "spec", PipelineSpec.from_dict(self.spec))


@dataclass
class EngineMetrics:
    """Service-level counters aggregated across an engine's verifiers.

    ``phase_wall_s`` / ``phase_tasks`` break the engine's time down by
    execution phase (``admission``, ``warm_profiles``, ``release``), and
    ``release_tasks`` / ``profile_tasks`` count what the execution backend
    actually fanned out.

    The ledger breakdown (``epsilon_budget`` / ``epsilon_remaining`` /
    ``ledger_charges``) mirrors the engine's accountant; ``spend_by_tenant``
    is filled by a tenant-layered caller (the HTTP server) — the engine
    itself does not know analysts.  Batching counters (``batch_*``)
    describe a request coalescer layered in front of the engine (the HTTP
    server's :class:`~repro.server.batching.ReleaseCoalescer`); like
    ``spend_by_tenant`` they are filled by that caller — the engine itself
    does not queue.

    **Monotonicity.**  This table is the single source of truth for which
    fields are counters (monotonically non-decreasing within one server
    process — two snapshots can safely be differenced for rates; they
    reset only on restart) and which are gauges (free to move both ways).
    The README metrics table and the Prometheus exposition
    (:mod:`repro.obs.export`) follow it: counters export with a
    ``_total`` suffix (durations as ``_seconds_total``), gauges export
    unsuffixed.

    ========================== ========= =======================================
    field                      kind      notes
    ========================== ========= =======================================
    ``requests_submitted``     counter   accepted for execution
    ``releases_completed``     counter   can double-count a replayed
                                         failure group (``execute_many``
                                         with ``return_exceptions=True``)
    ``requests_rejected``      counter   budget-rejected admissions
    ``epsilon_spent``          counter   budget never un-spends
    ``epsilon_budget``         gauge     configured; constant per process
    ``epsilon_remaining``      gauge     shrinks with spend
    ``ledger_charges``         counter   ledger is append-only
    ``spend_by_tenant``        counters  one monotone spend per tenant
    ``tenant_rejections``      counters  (server-added key) one monotone
                                         rejection count per tenant
    ``profile_hits``           counter
    ``profile_misses``         counter
    ``profile_evictions``      counter
    ``profiles_cached``        gauge     LRU occupancy
    ``fm_evaluations``         counter   detector runs (the paper's cost
                                         unit)
    ``fm_queries``             counter   batched detector calls
    ``n_verifiers``            gauge     distinct detector configs alive
    ``wall_time_s``            counter   seconds; exported as
                                         ``pcor_engine_wall_seconds_total``
    ``release_tasks``          counter   backend fan-out
    ``profile_tasks``          counter   backend fan-out
    ``phase_wall_s``           counters  seconds per phase
    ``phase_tasks``            counters  tasks per phase
    ``batch_flushes``          counter
    ``batch_requests``         counter
    ``batch_queue_depth``      gauge     current queue length
    ``batch_queue_wait_s``     counter   seconds (unit suffix!); exported
                                         as
                                         ``pcor_batch_queue_wait_seconds_total``
    ``batch_size_min``         gauge     over a recent window of flushes
    ``batch_size_p50``         gauge     over a recent window of flushes
    ``batch_size_max``         gauge     over a recent window of flushes
    ``dataset_version``        gauge     append counter of the served
                                         dataset (monotone, but a gauge:
                                         its *value* is an identity, not
                                         an event count to rate over)
    ``appends``                counter   committed dataset appends
    ``profiles_invalidated``   counter   profiles dropped by targeted
                                         append invalidation
    ``backend`` / ``backend_workers``    informational, not a metric
    ========================== ========= =======================================
    """

    requests_submitted: int = 0
    releases_completed: int = 0
    requests_rejected: int = 0
    epsilon_spent: float = 0.0
    epsilon_budget: Optional[float] = None
    epsilon_remaining: Optional[float] = None
    ledger_charges: int = 0
    spend_by_tenant: Dict[str, float] = field(default_factory=dict)
    profile_hits: int = 0
    profile_misses: int = 0
    profile_evictions: int = 0
    profiles_cached: int = 0
    fm_evaluations: int = 0
    fm_queries: int = 0
    n_verifiers: int = 0
    wall_time_s: float = 0.0
    backend: str = "serial"
    backend_workers: int = 1
    release_tasks: int = 0
    profile_tasks: int = 0
    phase_wall_s: Dict[str, float] = field(default_factory=dict)
    phase_tasks: Dict[str, int] = field(default_factory=dict)
    batch_flushes: int = 0
    batch_requests: int = 0
    batch_queue_depth: int = 0
    batch_queue_wait_s: float = 0.0
    batch_size_min: Optional[int] = None
    batch_size_p50: Optional[float] = None
    batch_size_max: Optional[int] = None
    dataset_version: int = 0
    appends: int = 0
    profiles_invalidated: int = 0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (JSON-able)."""
        return asdict(self)


class ReleaseEngine:
    """A long-lived PCOR service bound to one dataset.

    Parameters
    ----------
    dataset:
        The protected dataset all requests run against.
    budget:
        Optional total OCDP budget.  When set, every ``submit`` charges the
        engine's :class:`PrivacyAccountant` *before* resolving components or
        touching data, so an over-budget request fails without a single
        ``f_M`` evaluation.  ``None`` runs unbudgeted (the caller accounts).
    accountant:
        A pre-built :class:`PrivacyAccountant` *instance* to charge instead
        of constructing one from ``budget`` (mutually exclusive with it).
        This is how the HTTP server layers durable, replayed, per-tenant
        ledgers onto an engine: the server and the engine share one
        accountant object, so ``/v1/budget`` and ``submit`` admission can
        never disagree.
    profile_capacity:
        LRU bound of each per-detector profile store.
    mask_index:
        Optional pre-built predicate bitmap index (must belong to
        ``dataset``); shared by every verifier the engine creates.
    backend:
        Execution backend for batch fan-out and large profile batches: an
        :class:`~repro.runtime.base.ExecutionBackend` instance, a registry
        name (``serial`` / ``thread`` / ``process``), or ``None`` — which
        honours a request spec's ``backend`` field, then the
        ``PCOR_BACKEND`` environment variable, then falls back to serial.
        Any backend at any worker count releases bit-identical contexts to
        serial for the same seed.
    workers:
        Worker count for a backend named here (``None`` reads
        ``PCOR_WORKERS``, then ``min(4, cpu_count)``).
    """

    def __init__(
        self,
        dataset: Dataset,
        budget: Optional[float] = None,
        profile_capacity: int = DEFAULT_CAPACITY,
        mask_index: Optional[PredicateMaskIndex] = None,
        backend: Union[None, str, ExecutionBackend] = None,
        workers: Optional[int] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ):
        self.dataset = dataset
        if accountant is not None:
            if budget is not None:
                raise PrivacyBudgetError(
                    "pass either budget= or accountant=, not both; an "
                    "injected accountant already carries its budget"
                )
            self.accountant = accountant
        else:
            self.accountant = PrivacyAccountant(budget) if budget is not None else None
        if mask_index is not None and mask_index.dataset is not dataset:
            raise VerificationError("mask index was built for a different dataset")
        self._masks = mask_index
        # Append counter of the served dataset; results and ledger charges
        # are stamped with it.  Worker engines inherit the parent's counter
        # through the shared-memory handle's version.
        self._dataset_version = (
            mask_index.dataset_version if mask_index is not None else 0
        )
        self._appends = 0
        self.profile_capacity = int(profile_capacity)
        self._verifiers: Dict[Tuple, OutlierVerifier] = {}
        # An explicitly named backend wins over request specs; a spec-named
        # backend wins over the PCOR_BACKEND environment default.
        self._explicit_backend = backend is not None
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend, workers)
        self._spec_backends: Dict[Tuple[str, Optional[int]], ExecutionBackend] = {}
        self._lock = threading.RLock()
        self._append_lock = threading.Lock()  # serialises dataset appends
        self._phase_wall: Dict[str, float] = {}
        self._phase_tasks: Dict[str, int] = {}
        self.requests_submitted = 0
        self.releases_completed = 0
        self.requests_rejected = 0
        self.wall_time_s = 0.0

    # -------------------------------------------------------------- plumbing

    @property
    def masks(self) -> PredicateMaskIndex:
        """The dataset's predicate bitmap index, built on first use.

        Lazy so that engines serving only *adopted* verifiers (each carrying
        its own index) never pay the O(t*n) bit-pack pass twice.
        """
        if self._masks is None:
            self._masks = PredicateMaskIndex(self.dataset)
        return self._masks

    @property
    def dataset_version(self) -> int:
        """Append counter of the served dataset (0 until the first append)."""
        return self._dataset_version

    @property
    def spent(self) -> float:
        """Total OCDP budget charged so far (0.0 when unbudgeted)."""
        return self.accountant.spent if self.accountant is not None else 0.0

    @property
    def remaining(self) -> Optional[float]:
        """Remaining budget, or ``None`` when unbudgeted."""
        return self.accountant.remaining if self.accountant is not None else None

    def can_submit(self, epsilon: float) -> bool:
        """Would a release costing ``epsilon`` fit the remaining budget?"""
        if self.accountant is None:
            return True
        return float(epsilon) <= self.accountant.remaining * (1.0 + 1e-9)

    def verifier_for(self, detector) -> OutlierVerifier:
        """The engine's shared verifier for this detector configuration.

        Verifiers (and hence profile stores) are keyed by detector
        *fingerprint*, so two requests naming the same detector with equal
        kwargs share one cache even across different sampler/utility/epsilon
        choices.  Profiles depend on the detector, so distinct detector
        configurations get distinct stores.
        """
        key = detector_fingerprint(detector)
        with self._lock:
            verifier = self._verifiers.get(key)
            if verifier is None:
                verifier = OutlierVerifier(
                    self.dataset,
                    detector,
                    self.masks,
                    profile_store=ProfileStore(capacity=self.profile_capacity),
                    backend=self.backend if self.backend.parallel else None,
                )
                self._verifiers[key] = verifier
            return verifier

    def adopt_verifier(self, verifier: OutlierVerifier) -> OutlierVerifier:
        """Register a pre-built verifier (keeps its mask index and store).

        Requests whose detector fingerprint matches ``verifier.detector``
        will run against it — how the :class:`~repro.core.pcor.PCOR` facade
        keeps its explicit-verifier and ``share_profiles`` semantics while
        delegating execution here.
        """
        if verifier.dataset is not self.dataset:
            raise VerificationError("verifier was built for a different dataset")
        with self._lock:
            if verifier.backend is None and self.backend.parallel:
                verifier.backend = self.backend
            self._verifiers[detector_fingerprint(verifier.detector)] = verifier
        return verifier

    def append(self, records: Sequence[Mapping]) -> Dict[str, object]:
        """Grow the served dataset in place: the live-append entry point.

        Builds the post-append index state (word-level mask updates, no
        O(t*n) rebuild), invalidates exactly the cached profiles whose
        contexts contain an appended record — stamping every verifier's
        store with the new version so profile writes racing this append are
        fenced out — then atomically publishes the new ``(dataset, masks,
        version)`` snapshot.  Concurrent releases see either the old or the
        new dataset, never a mix; each result records which via its
        ``dataset_version``.

        Returns a summary: appended count, new record ids, total records,
        the new dataset version, and how many cached profiles were dropped.
        """
        rows = list(records)
        masks = self.masks
        with self._append_lock:
            if not rows:
                return {
                    "appended": 0,
                    "record_ids": [],
                    "n_records": len(self.dataset),
                    "dataset_version": self._dataset_version,
                    "invalidated_profiles": 0,
                }
            with self._lock:
                verifiers = list(self._verifiers.values())
            for verifier in verifiers:
                if verifier.masks is not masks:
                    raise VerificationError(
                        "append requires every verifier to share the "
                        "engine's mask index (an adopted verifier carries "
                        "its own index and would silently diverge)"
                    )
            pending = masks.prepare_append(rows)
            dropped = 0
            for verifier in verifiers:
                dropped += verifier.profile_store.invalidate_matching(
                    pending.record_bits, pending.version
                )
            new_dataset = masks.commit_append(pending)
            self.dataset = new_dataset
            for verifier in verifiers:
                verifier.rebind(new_dataset)
            with self._lock:
                self._dataset_version = pending.version
                self._appends += 1
        return {
            "appended": len(pending.record_ids),
            "record_ids": list(pending.record_ids),
            "n_records": len(new_dataset),
            "dataset_version": pending.version,
            "invalidated_profiles": dropped,
        }

    def metrics(self) -> EngineMetrics:
        """Aggregated counters across the engine and all its verifiers."""
        with self._lock:
            m = EngineMetrics(
                requests_submitted=self.requests_submitted,
                releases_completed=self.releases_completed,
                requests_rejected=self.requests_rejected,
                epsilon_spent=self.spent,
                n_verifiers=len(self._verifiers),
                wall_time_s=self.wall_time_s,
                backend=self.backend.name,
                backend_workers=self.backend.workers,
                phase_wall_s=dict(self._phase_wall),
                phase_tasks=dict(self._phase_tasks),
                dataset_version=self._dataset_version,
                appends=self._appends,
            )
            if self.accountant is not None:
                m.epsilon_budget = self.accountant.budget
                m.epsilon_remaining = self.accountant.remaining
                m.ledger_charges = len(self.accountant.ledger())
            verifiers = list(self._verifiers.values())
            backends = [self.backend, *self._spec_backends.values()]
        for verifier in verifiers:
            store = verifier.profile_store
            stats = store.stats()
            m.profile_hits += stats["hits"]
            m.profile_misses += stats["misses"]
            m.profile_evictions += stats["evictions"]
            m.profiles_cached += stats["size"]
            m.profiles_invalidated += stats["invalidations"]
            m.fm_evaluations += verifier.fm_evaluations
            m.fm_queries += verifier.fm_queries
        for backend in backends:
            stats = backend.stats()
            m.release_tasks += stats["release_tasks"]
            m.profile_tasks += stats["profile_tasks"]
        return m

    def _phase(self, name: str, wall: float, tasks: int = 0) -> None:
        with self._lock:
            self._phase_wall[name] = self._phase_wall.get(name, 0.0) + wall
            if tasks:
                self._phase_tasks[name] = self._phase_tasks.get(name, 0) + tasks

    def close(self) -> None:
        """Release execution resources (worker pools, shared memory).

        Closes every backend the engine created itself — including
        spec-resolved ones — but not a backend *instance* the caller passed
        in (the caller owns its lifecycle).  Safe to call more than once;
        the engine remains usable afterwards (backends respawn pools
        lazily).
        """
        if self._owns_backend:
            self.backend.close()
        with self._lock:
            spec_backends = list(self._spec_backends.values())
            self._spec_backends.clear()
        for backend in spec_backends:
            backend.close()

    def __enter__(self) -> "ReleaseEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ submission

    def submit(self, request: Union[ReleaseRequest, Mapping]) -> PCORResult:
        """Run one budgeted release.

        The ledger is charged *first* (even an aborted mechanism run may
        leak); over-budget requests raise :class:`PrivacyBudgetError` before
        any component is built or any ``f_M`` evaluation runs.
        """
        request = self._coerce(request)
        with self._lock:
            self.requests_submitted += 1
        self._charge(request)
        t0 = time.perf_counter()
        result = self._execute(request)
        self._phase("release", time.perf_counter() - t0, tasks=1)
        return result

    def execute(self, request: Union[ReleaseRequest, Mapping]) -> PCORResult:
        """Run one release whose budget was already admitted externally.

        Identical to :meth:`submit` except that the engine's own accountant
        is *not* charged — for callers that performed admission against a
        richer ledger sharing this engine's accountant (the HTTP server's
        tenant-layered :class:`~repro.server.tenants.TenantBudgets` charges
        the engine's global accountant and the per-tenant ledger in one
        atomic step, then executes here).  Calling this without external
        admission runs the release unaccounted — don't.
        """
        request = self._coerce(request)
        with self._lock:
            self.requests_submitted += 1
        t0 = time.perf_counter()
        result = self._execute(request)
        self._phase("release", time.perf_counter() - t0, tasks=1)
        return result

    def submit_many(
        self, requests: Sequence[Union[ReleaseRequest, Mapping]]
    ) -> List[PCORResult]:
        """Run a batch of releases, amortising shared work across them.

        All requests are charged up front in one atomic ledger transaction —
        if any would overdraw the budget, the whole batch is rejected before
        a single ``f_M`` evaluation and nothing is charged.  The batch then
        executes on the engine's execution backend: one task per request,
        each drawing from its own RNG substream spawned from the request
        seeds in request order, with results reduced in that same order —
        so serial, thread and process backends release bit-identical
        contexts for the same seeds at any worker count.

        On the serial path, records whose starting-context search will run
        are first pre-profiled through one batched mask pass per verifier
        (the first probe of every search); parallel backends skip the warm
        pass — thread workers share the store anyway and process workers
        warm their own caches as they go.

        Privacy accounting is per-request, identical to :meth:`submit`; see
        :meth:`repro.core.pcor.PCOR.release_many` for the worst-case
        sequential-composition caveat across records.
        """
        reqs = [self._coerce(r) for r in requests]
        with self._lock:
            self.requests_submitted += len(reqs)
        if not reqs:
            return []
        t0 = time.perf_counter()
        if self.accountant is not None:
            # All-or-nothing admission, atomic on the accountant's lock: a
            # rejected batch leaves the ledger untouched, and no concurrent
            # submitter can slip a charge between the check and the append.
            try:
                self.accountant.charge_many(
                    [(self._charge_label(r), r.spec.epsilon) for r in reqs]
                )
            except PrivacyBudgetError:
                with self._lock:
                    self.requests_rejected += len(reqs)
                total = math.fsum(r.spec.epsilon for r in reqs)
                raise PrivacyBudgetError(
                    f"batch of {len(reqs)} requests needs epsilon={total:.6g} "
                    f"but only {self.accountant.remaining:.6g} of "
                    f"{self.accountant.budget:g} remains"
                ) from None
        self._phase("admission", time.perf_counter() - t0)

        backend = self._backend_for(reqs)
        tokens = plan_task_rngs([r.seed for r in reqs])
        return self._execute_batch(backend, reqs, tokens)

    def execute_many(
        self,
        requests: Sequence[Union[ReleaseRequest, Mapping]],
        return_exceptions: bool = False,
    ) -> List:
        """Run a batch of releases whose budgets were already admitted.

        The batch counterpart of :meth:`execute`: the engine's own
        accountant is *not* charged — the caller performed admission against
        a richer ledger sharing this accountant (the HTTP server's request
        coalescer admits each queued request through
        :class:`~repro.server.tenants.TenantBudgets` before flushing the
        admitted set here).  Calling this without external admission runs
        the batch unaccounted — don't.

        Unlike :meth:`submit_many`, a batch mixing execution backends is
        *grouped*, not rejected: requests are partitioned by the backend
        their spec resolves to (the coalescer cannot choose what analysts
        co-submit) and each group runs through the normal batch path.  RNG
        substreams are planned once for the whole batch in request order —
        before any grouping — and results are reduced back into request
        order, so the grouping (and any batching boundary a coalescer
        picks) can never change a release: every request releases
        bit-identically to a lone :meth:`submit`/:meth:`execute` with the
        same seed.

        With ``return_exceptions=True`` a request that fails mid-release
        (no matching context, record outside the dataset, ...) yields its
        :class:`~repro.exceptions.ReproError` *in place* instead of
        poisoning its co-batched requests; the caller dispatches on
        ``isinstance(outcome, ReproError)``.  On this path a parallel
        group that fails wholesale is replayed per-request (substreams are
        planned up front, so the replay is bit-identical), which can double
        some metrics counters (``releases_completed``, ``fm_evaluations``)
        for the group — a failure-path-only distortion.
        """
        reqs = [self._coerce(r) for r in requests]
        with self._lock:
            self.requests_submitted += len(reqs)
        if not reqs:
            return []
        tokens = plan_task_rngs([r.seed for r in reqs])
        outcomes: List = [None] * len(reqs)
        for backend, indices in self._partition_by_backend(reqs):
            group = [reqs[i] for i in indices]
            group_tokens = [tokens[i] for i in indices]
            results = self._execute_batch(
                backend, group, group_tokens, capture=return_exceptions
            )
            for index, result in zip(indices, results):
                outcomes[index] = result
        return outcomes

    def _partition_by_backend(
        self, requests: Sequence[ReleaseRequest]
    ) -> List[Tuple[ExecutionBackend, List[int]]]:
        """Group request indices by the execution backend their spec names.

        The backend fingerprint is ``(backend, workers)`` exactly as
        :meth:`_backend_for` resolves it for a uniform batch (spec name,
        worker-count promotion, engine default); groups preserve first-seen
        order and each index appears exactly once.
        """
        if self._explicit_backend:
            return [(self.backend, list(range(len(requests))))]
        groups: Dict[Optional[Tuple[str, Optional[int]]], List[int]] = {}
        for i, request in enumerate(requests):
            name = request.spec.backend
            if name is None and (request.spec.workers or 0) > 1:
                name = "process"
            key = None if name is None else (name, request.spec.workers)
            groups.setdefault(key, []).append(i)
        out: List[Tuple[ExecutionBackend, List[int]]] = []
        for key, indices in groups.items():
            if key is None:
                out.append((self.backend, indices))
                continue
            with self._lock:
                backend = self._spec_backends.get(key)
                if backend is None:
                    backend = make_backend(key[0], workers=key[1])
                    self._spec_backends[key] = backend
            out.append((backend, indices))
        return out

    def _execute_batch(
        self,
        backend: ExecutionBackend,
        reqs: Sequence[ReleaseRequest],
        tokens: Sequence,
        capture: bool = False,
    ) -> List:
        """Execute admitted requests on ``backend``, reduced in request
        order.  With ``capture`` a failed release yields its
        :class:`~repro.exceptions.ReproError` in place of a result."""
        if backend.parallel and len(reqs) > 1:
            t0 = time.perf_counter()
            if capture and not backend.remote:
                # In-process backends call engine._execute per task: a
                # capturing view turns each failure into an in-place
                # outcome without disturbing its co-batched tasks.
                results = backend.run_releases(_CapturingEngine(self), reqs, tokens)
            elif capture:
                try:
                    results = backend.run_releases(self, reqs, tokens)
                except ReproError:
                    # A remote pool surfaces only the first task failure and
                    # discards the rest of the batch.  The parent-side
                    # tokens were never consumed (workers got pickled
                    # copies), so replaying each request inline is
                    # bit-identical — and isolates exactly which requests
                    # actually fail.
                    results = []
                    for request, token in zip(reqs, tokens):
                        try:
                            results.append(
                                self._execute(request, rng_from_token(token))
                            )
                        except ReproError as exc:
                            results.append(exc)
            else:
                results = backend.run_releases(self, reqs, tokens)
            self._phase("release", time.perf_counter() - t0, tasks=len(reqs))
            if backend.remote:
                # Remote tasks never pass through this process's _execute;
                # fold their outcomes into the engine's counters here.
                completed = [r for r in results if isinstance(r, PCORResult)]
                with self._lock:
                    self.releases_completed += len(completed)
                    self.wall_time_s += sum(r.wall_time_s for r in completed)
            return results

        # Serial path: warm the stores with the exact context of every
        # record whose starting-context search will run, grouped per
        # verifier.  Requests with an explicit start — or a spec that never
        # searches — skip the search, so pre-profiling them could only
        # waste detector runs.
        t0 = time.perf_counter()
        warm: Dict[int, Tuple[OutlierVerifier, List[int]]] = {}
        for request in reqs:
            if request.starting_context is not None:
                continue
            if not request.spec.needs_starting_context():
                continue
            if not self.dataset.has_record(request.record_id):
                continue
            verifier = self.verifier_for(request.spec.build_detector())
            entry = warm.setdefault(id(verifier), (verifier, []))
            entry[1].append(self.dataset.record_bits(request.record_id))
        warmed = 0
        for verifier, bits in warm.values():
            verifier.profiles(bits)
            warmed += len(bits)
        if warm:
            self._phase("warm_profiles", time.perf_counter() - t0, tasks=warmed)

        t0 = time.perf_counter()
        results = []
        for request, token in zip(reqs, tokens):
            try:
                results.append(self._execute(request, rng_from_token(token)))
            except ReproError as exc:
                if not capture:
                    raise
                results.append(exc)
        self._phase("release", time.perf_counter() - t0, tasks=len(reqs))
        return results

    def _backend_for(self, requests: Sequence[ReleaseRequest]) -> ExecutionBackend:
        """The backend a batch runs on.

        An engine constructed with an explicit backend always uses it.
        Otherwise a backend named by the request specs wins (all specs in
        the batch must agree), falling back to the engine's environment
        default.  Spec-resolved backends are cached per (name, workers) so
        repeated batches reuse one pool.
        """
        if self._explicit_backend:
            return self.backend
        named = set()
        for r in requests:
            name = r.spec.backend
            if name is None and (r.spec.workers or 0) > 1:
                # Same promotion as resolve_backend/the CLI: asking for
                # workers must never silently run serial.
                name = "process"
            if name is not None:
                named.add((name, r.spec.workers))
        if not named:
            return self.backend
        if len(named) > 1:
            raise ExecutionError(
                f"batch mixes execution backends {sorted(named)}; submit "
                "uniform batches or construct the engine with an explicit "
                "backend"
            )
        key = named.pop()
        with self._lock:
            backend = self._spec_backends.get(key)
            if backend is None:
                backend = make_backend(key[0], workers=key[1])
                self._spec_backends[key] = backend
            return backend

    # ------------------------------------------------------------- internals

    @staticmethod
    def _coerce(request: Union[ReleaseRequest, Mapping]) -> ReleaseRequest:
        if isinstance(request, ReleaseRequest):
            return request
        if isinstance(request, Mapping):
            return ReleaseRequest(**dict(request))
        raise SamplingError(
            f"submit expects a ReleaseRequest or a mapping, "
            f"got {type(request).__name__}"
        )

    def _charge_label(self, request: ReleaseRequest) -> str:
        spec = request.spec
        sampler_name = (
            spec.sampler if isinstance(spec.sampler, str) else spec.sampler.name
        )
        # The version stamp in the ledger records which dataset snapshot the
        # charge was admitted against — an auditor replaying the WAL of an
        # append-only deployment can line charges up with appends.
        return (
            f"submit(record={request.record_id}, sampler={sampler_name}, "
            f"epsilon={spec.epsilon:g}, dataset_v{self._dataset_version})"
        )

    def _charge(self, request: ReleaseRequest) -> None:
        if self.accountant is None:
            return
        try:
            self.accountant.charge(self._charge_label(request), request.spec.epsilon)
        except PrivacyBudgetError:
            with self._lock:
                self.requests_rejected += 1
            raise

    def _execute(
        self, request: ReleaseRequest, gen: Optional[np.random.Generator] = None
    ) -> PCORResult:
        """The release core (Definition 3.2 end to end) — shared by every
        entry point, so identical seeds release identical contexts whether
        they arrive via ``submit``, ``PCOR.release``, a ``ReleaseSession``
        or an execution-backend task.  ``gen`` overrides the request seed
        with a pre-planned per-task substream (the batch fan-out path)."""
        spec = request.spec
        record_id = request.record_id
        if gen is None:
            gen = ensure_rng(request.seed)
        # Tracing draws no randomness and branches only on a local bool:
        # a traced release is bit-identical to an untraced one, and an
        # unsampled trace costs one attribute read.
        trace = request.trace
        tracing = trace is not None and trace.sampled
        if tracing:
            mark_exec = mark = time.monotonic()
        t0 = time.perf_counter()

        # Engine phases double as profiler frame annotations: while a
        # sampling profiler is live (GET /v1/debug/profile), stacks from
        # this thread carry the current phase as a synthetic frame.  Like
        # tracing, this draws no randomness; idle cost is one global read.
        try:
            set_engine_phase("engine.starting_context")
            verifier = self.verifier_for(spec.build_detector())
            sampler = spec.build_sampler()
            # Thread-local so concurrent releases on one verifier (thread
            # backend) don't attribute each other's detector runs.
            fm_before = verifier.local_fm_evaluations

            starting_bits = self._resolve_starting_bits(
                verifier, sampler, spec, record_id, request.starting_context, gen
            )
            utility = spec.build_utility(verifier, record_id, starting_bits)
            if tracing:
                now = time.monotonic()
                trace.add_span("engine.starting_context", mark, now)
                mark = now

            eps1 = epsilon_one_for(
                sampler.accounting_name, spec.epsilon, sampler.n_samples
            )
            mechanism = ExponentialMechanism(
                eps1,
                sensitivity=utility.sensitivity or 1.0,
                half_sensitivity=spec.half_sensitivity,
            )

            set_engine_phase("engine.sample")
            run = sampler.sample(
                verifier, utility, record_id, starting_bits, mechanism, gen
            )
            if tracing:
                now = time.monotonic()
                trace.add_span(
                    "engine.sample", mark, now, n_candidates=len(run.candidates)
                )
                mark = now
            if not run.candidates:
                raise SamplingError(
                    f"sampler {sampler.name!r} collected no candidates for "
                    f"record {record_id}"
                )

            set_engine_phase("engine.select")
            scores = utility.scores(run.candidates)
            run.stats.mechanism_invocations += 1
            chosen, _ = mechanism.select(run.candidates, scores, gen)

            result = PCORResult(
                context=Context(verifier.schema, chosen),
                record_id=record_id,
                utility_value=float(utility.score(chosen)),
                utility_name=utility.name,
                epsilon_total=spec.epsilon,
                epsilon_one=eps1,
                algorithm=sampler.name,
                n_candidates=len(run.candidates),
                starting_context=(
                    Context(verifier.schema, starting_bits)
                    if starting_bits is not None
                    else None
                ),
                stats=run.stats,
                fm_evaluations=verifier.local_fm_evaluations - fm_before,
                wall_time_s=time.perf_counter() - t0,
                dataset_version=self._dataset_version,
            )
        finally:
            set_engine_phase(None)
        if tracing:
            now = time.monotonic()
            trace.add_span("engine.select", mark, now)
            trace.add_span(
                "engine.execute",
                mark_exec,
                now,
                record_id=record_id,
                fm_evaluations=result.fm_evaluations,
                pid=os.getpid(),
            )
        with self._lock:
            self.releases_completed += 1
            self.wall_time_s += result.wall_time_s
        return result

    def _resolve_starting_bits(
        self,
        verifier: OutlierVerifier,
        sampler: Sampler,
        spec: PipelineSpec,
        record_id: int,
        starting_context: Union[None, int, Context],
        gen,
    ) -> Optional[int]:
        needs_start = (
            sampler.requires_starting_context
            or spec.utility_requires_starting_context()
        )
        if starting_context is None:
            if not needs_start:
                return None
            ctx = find_starting_context(verifier, record_id, gen)
            return ctx.bits
        bits = (
            starting_context.bits
            if isinstance(starting_context, Context)
            else int(starting_context)
        )
        if not verifier.is_matching(bits, record_id):
            raise SamplingError(
                f"starting context {bits:#x} is not a matching context for "
                f"record {record_id}; graph samplers must start from a valid "
                "context (Section 5.2)"
            )
        return bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (
            f"budget={self.accountant.budget:g}, spent={self.spent:g}"
            if self.accountant is not None
            else "unbudgeted"
        )
        return (
            f"ReleaseEngine(n={len(self.dataset)}, {budget}, "
            f"backend={self.backend.name}:{self.backend.workers}, "
            f"verifiers={len(self._verifiers)}, "
            f"releases={self.releases_completed})"
        )


class _CapturingEngine:
    """An engine view whose ``_execute`` returns a failed release's
    :class:`~repro.exceptions.ReproError` instead of raising it.

    In-process backends (serial/thread) run tasks by calling
    ``engine._execute`` directly; handing them this view makes every task
    outcome land in the reduced result list — so one bad request in a
    coalesced batch cannot poison the releases queued alongside it.
    Everything else delegates to the real engine.
    """

    def __init__(self, engine: ReleaseEngine) -> None:
        self._engine = engine

    def _execute(self, request: ReleaseRequest, gen=None):
        try:
            return self._engine._execute(request, gen)
        except ReproError as exc:
            return exc

    def __getattr__(self, name: str):
        return getattr(self._engine, name)

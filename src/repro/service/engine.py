"""The long-lived release engine: budgeted, multi-pipeline PCOR service.

The paper frames PCOR as a service a data owner runs for analysts — repeated
budgeted queries over one dataset (Sections 1 and 6.3).  This module is that
service layer:

* :class:`ReleaseRequest` — one structured query: record, pipeline spec,
  optional starting context, seed.
* :class:`ReleaseEngine` — a long-lived object bound to one dataset.  It
  owns the shared :class:`~repro.data.masks.PredicateMaskIndex`, one
  :class:`~repro.core.profiles.ProfileStore`-backed verifier per distinct
  detector configuration, and (optionally) a
  :class:`~repro.mechanisms.accounting.PrivacyAccountant` charged *before*
  any data is touched.  Because the spec travels with the request, one
  engine serves releases with different detectors, samplers, utilities and
  epsilons against one dataset without ever rebuilding caches.
* :class:`EngineMetrics` — aggregated service counters (profile hit/miss,
  uncached detector runs, wall time) for dashboards and logs.

The legacy entry points are thin wrappers over this engine:
:class:`repro.core.pcor.PCOR` submits requests carrying its fixed spec, and
:class:`repro.analysis.session.ReleaseSession` is a budgeted engine plus a
result log.  Identical seeds release identical contexts through every path.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.context.context import Context
from repro.core.profiles import DEFAULT_CAPACITY, ProfileStore, detector_fingerprint
from repro.core.result import PCORResult
from repro.core.sampling.base import Sampler
from repro.core.starting import find_starting_context
from repro.core.verification import OutlierVerifier
from repro.data.masks import PredicateMaskIndex
from repro.data.table import Dataset
from repro.exceptions import PrivacyBudgetError, SamplingError, VerificationError
from repro.mechanisms.accounting import PrivacyAccountant, epsilon_one_for
from repro.mechanisms.exponential import ExponentialMechanism
from repro.rng import RngLike, ensure_rng
from repro.service.spec import PipelineSpec


@dataclass(frozen=True)
class ReleaseRequest:
    """One structured release query against a :class:`ReleaseEngine`.

    Attributes
    ----------
    record_id:
        The queried outlier ``V``.
    spec:
        The pipeline to run — a :class:`PipelineSpec` (a plain mapping is
        coerced through :meth:`PipelineSpec.from_dict`).
    starting_context:
        Optional valid context to start graph samplers from; ``None`` lets
        the engine search for one.
    seed:
        RNG seed/generator for this release.  Passing one shared generator
        across several requests draws them from a single stream, so one seed
        reproduces a whole batch.
    """

    record_id: int
    spec: Union[PipelineSpec, Mapping]
    starting_context: Union[None, int, Context] = None
    seed: RngLike = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "record_id", int(self.record_id))
        if not isinstance(self.spec, PipelineSpec):
            object.__setattr__(self, "spec", PipelineSpec.from_dict(self.spec))


@dataclass
class EngineMetrics:
    """Service-level counters aggregated across an engine's verifiers."""

    requests_submitted: int = 0
    releases_completed: int = 0
    requests_rejected: int = 0
    epsilon_spent: float = 0.0
    profile_hits: int = 0
    profile_misses: int = 0
    profile_evictions: int = 0
    profiles_cached: int = 0
    fm_evaluations: int = 0
    fm_queries: int = 0
    n_verifiers: int = 0
    wall_time_s: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot (JSON-able)."""
        return asdict(self)


class ReleaseEngine:
    """A long-lived PCOR service bound to one dataset.

    Parameters
    ----------
    dataset:
        The protected dataset all requests run against.
    budget:
        Optional total OCDP budget.  When set, every ``submit`` charges the
        engine's :class:`PrivacyAccountant` *before* resolving components or
        touching data, so an over-budget request fails without a single
        ``f_M`` evaluation.  ``None`` runs unbudgeted (the caller accounts).
    profile_capacity:
        LRU bound of each per-detector profile store.
    mask_index:
        Optional pre-built predicate bitmap index (must belong to
        ``dataset``); shared by every verifier the engine creates.
    """

    def __init__(
        self,
        dataset: Dataset,
        budget: Optional[float] = None,
        profile_capacity: int = DEFAULT_CAPACITY,
        mask_index: Optional[PredicateMaskIndex] = None,
    ):
        self.dataset = dataset
        self.accountant = PrivacyAccountant(budget) if budget is not None else None
        if mask_index is not None and mask_index.dataset is not dataset:
            raise VerificationError("mask index was built for a different dataset")
        self._masks = mask_index
        self.profile_capacity = int(profile_capacity)
        self._verifiers: Dict[Tuple, OutlierVerifier] = {}
        self.requests_submitted = 0
        self.releases_completed = 0
        self.requests_rejected = 0
        self.wall_time_s = 0.0

    # -------------------------------------------------------------- plumbing

    @property
    def masks(self) -> PredicateMaskIndex:
        """The dataset's predicate bitmap index, built on first use.

        Lazy so that engines serving only *adopted* verifiers (each carrying
        its own index) never pay the O(t*n) bit-pack pass twice.
        """
        if self._masks is None:
            self._masks = PredicateMaskIndex(self.dataset)
        return self._masks

    @property
    def spent(self) -> float:
        """Total OCDP budget charged so far (0.0 when unbudgeted)."""
        return self.accountant.spent if self.accountant is not None else 0.0

    @property
    def remaining(self) -> Optional[float]:
        """Remaining budget, or ``None`` when unbudgeted."""
        return self.accountant.remaining if self.accountant is not None else None

    def can_submit(self, epsilon: float) -> bool:
        """Would a release costing ``epsilon`` fit the remaining budget?"""
        if self.accountant is None:
            return True
        return float(epsilon) <= self.accountant.remaining * (1.0 + 1e-9)

    def verifier_for(self, detector) -> OutlierVerifier:
        """The engine's shared verifier for this detector configuration.

        Verifiers (and hence profile stores) are keyed by detector
        *fingerprint*, so two requests naming the same detector with equal
        kwargs share one cache even across different sampler/utility/epsilon
        choices.  Profiles depend on the detector, so distinct detector
        configurations get distinct stores.
        """
        key = detector_fingerprint(detector)
        verifier = self._verifiers.get(key)
        if verifier is None:
            verifier = OutlierVerifier(
                self.dataset,
                detector,
                self.masks,
                profile_store=ProfileStore(capacity=self.profile_capacity),
            )
            self._verifiers[key] = verifier
        return verifier

    def adopt_verifier(self, verifier: OutlierVerifier) -> OutlierVerifier:
        """Register a pre-built verifier (keeps its mask index and store).

        Requests whose detector fingerprint matches ``verifier.detector``
        will run against it — how the :class:`~repro.core.pcor.PCOR` facade
        keeps its explicit-verifier and ``share_profiles`` semantics while
        delegating execution here.
        """
        if verifier.dataset is not self.dataset:
            raise VerificationError("verifier was built for a different dataset")
        self._verifiers[detector_fingerprint(verifier.detector)] = verifier
        return verifier

    def metrics(self) -> EngineMetrics:
        """Aggregated counters across the engine and all its verifiers."""
        m = EngineMetrics(
            requests_submitted=self.requests_submitted,
            releases_completed=self.releases_completed,
            requests_rejected=self.requests_rejected,
            epsilon_spent=self.spent,
            n_verifiers=len(self._verifiers),
            wall_time_s=self.wall_time_s,
        )
        for verifier in self._verifiers.values():
            store = verifier.profile_store
            m.profile_hits += store.hits
            m.profile_misses += store.misses
            m.profile_evictions += store.evictions
            m.profiles_cached += len(store)
            m.fm_evaluations += verifier.fm_evaluations
            m.fm_queries += verifier.fm_queries
        return m

    # ------------------------------------------------------------ submission

    def submit(self, request: Union[ReleaseRequest, Mapping]) -> PCORResult:
        """Run one budgeted release.

        The ledger is charged *first* (even an aborted mechanism run may
        leak); over-budget requests raise :class:`PrivacyBudgetError` before
        any component is built or any ``f_M`` evaluation runs.
        """
        request = self._coerce(request)
        self.requests_submitted += 1
        self._charge(request)
        return self._execute(request)

    def submit_many(
        self, requests: Sequence[Union[ReleaseRequest, Mapping]]
    ) -> List[PCORResult]:
        """Run a batch of releases, amortising shared work across them.

        All requests are charged up front — if any would overdraw the
        budget, the whole batch is rejected before a single ``f_M``
        evaluation.  Records whose starting-context search will run are then
        pre-profiled through one batched mask pass per verifier (the first
        probe of every search), after which the requests execute in order.

        Privacy accounting is per-request, identical to :meth:`submit`; see
        :meth:`repro.core.pcor.PCOR.release_many` for the worst-case
        sequential-composition caveat across records.
        """
        reqs = [self._coerce(r) for r in requests]
        self.requests_submitted += len(reqs)
        if self.accountant is not None:
            # All-or-nothing admission: check the batch total against the
            # remaining budget *before* charging anything, so a rejected
            # batch leaves the ledger untouched instead of spending budget
            # on its earlier requests.
            total = math.fsum(r.spec.epsilon for r in reqs)
            if total > self.accountant.remaining * (1.0 + 1e-9):
                self.requests_rejected += len(reqs)
                raise PrivacyBudgetError(
                    f"batch of {len(reqs)} requests needs epsilon={total:.6g} "
                    f"but only {self.accountant.remaining:.6g} of "
                    f"{self.accountant.budget:g} remains"
                )
            for request in reqs:
                self._charge(request)
        # Warm the stores with the exact context of every record whose
        # starting-context search will run, grouped per verifier.  Requests
        # with an explicit start — or a spec that never searches — skip the
        # search, so pre-profiling them could only waste detector runs.
        warm: Dict[int, Tuple[OutlierVerifier, List[int]]] = {}
        for request in reqs:
            if request.starting_context is not None:
                continue
            if not request.spec.needs_starting_context():
                continue
            if not self.dataset.has_record(request.record_id):
                continue
            verifier = self.verifier_for(request.spec.build_detector())
            entry = warm.setdefault(id(verifier), (verifier, []))
            entry[1].append(self.dataset.record_bits(request.record_id))
        for verifier, bits in warm.values():
            verifier.profiles(bits)
        return [self._execute(request) for request in reqs]

    # ------------------------------------------------------------- internals

    @staticmethod
    def _coerce(request: Union[ReleaseRequest, Mapping]) -> ReleaseRequest:
        if isinstance(request, ReleaseRequest):
            return request
        if isinstance(request, Mapping):
            return ReleaseRequest(**dict(request))
        raise SamplingError(
            f"submit expects a ReleaseRequest or a mapping, "
            f"got {type(request).__name__}"
        )

    def _charge(self, request: ReleaseRequest) -> None:
        if self.accountant is None:
            return
        spec = request.spec
        sampler_name = (
            spec.sampler if isinstance(spec.sampler, str) else spec.sampler.name
        )
        try:
            self.accountant.charge(
                f"submit(record={request.record_id}, sampler={sampler_name}, "
                f"epsilon={spec.epsilon:g})",
                spec.epsilon,
            )
        except PrivacyBudgetError:
            self.requests_rejected += 1
            raise

    def _execute(self, request: ReleaseRequest) -> PCORResult:
        """The release core (Definition 3.2 end to end) — shared by every
        entry point, so identical seeds release identical contexts whether
        they arrive via ``submit``, ``PCOR.release`` or a ``ReleaseSession``."""
        spec = request.spec
        record_id = request.record_id
        gen = ensure_rng(request.seed)
        t0 = time.perf_counter()

        verifier = self.verifier_for(spec.build_detector())
        sampler = spec.build_sampler()
        fm_before = verifier.fm_evaluations

        starting_bits = self._resolve_starting_bits(
            verifier, sampler, spec, record_id, request.starting_context, gen
        )
        utility = spec.build_utility(verifier, record_id, starting_bits)

        eps1 = epsilon_one_for(
            sampler.accounting_name, spec.epsilon, sampler.n_samples
        )
        mechanism = ExponentialMechanism(
            eps1,
            sensitivity=utility.sensitivity or 1.0,
            half_sensitivity=spec.half_sensitivity,
        )

        run = sampler.sample(
            verifier, utility, record_id, starting_bits, mechanism, gen
        )
        if not run.candidates:
            raise SamplingError(
                f"sampler {sampler.name!r} collected no candidates for "
                f"record {record_id}"
            )

        scores = utility.scores(run.candidates)
        run.stats.mechanism_invocations += 1
        chosen, _ = mechanism.select(run.candidates, scores, gen)

        result = PCORResult(
            context=Context(verifier.schema, chosen),
            record_id=record_id,
            utility_value=float(utility.score(chosen)),
            utility_name=utility.name,
            epsilon_total=spec.epsilon,
            epsilon_one=eps1,
            algorithm=sampler.name,
            n_candidates=len(run.candidates),
            starting_context=(
                Context(verifier.schema, starting_bits)
                if starting_bits is not None
                else None
            ),
            stats=run.stats,
            fm_evaluations=verifier.fm_evaluations - fm_before,
            wall_time_s=time.perf_counter() - t0,
        )
        self.releases_completed += 1
        self.wall_time_s += result.wall_time_s
        return result

    def _resolve_starting_bits(
        self,
        verifier: OutlierVerifier,
        sampler: Sampler,
        spec: PipelineSpec,
        record_id: int,
        starting_context: Union[None, int, Context],
        gen,
    ) -> Optional[int]:
        needs_start = (
            sampler.requires_starting_context
            or spec.utility_requires_starting_context()
        )
        if starting_context is None:
            if not needs_start:
                return None
            ctx = find_starting_context(verifier, record_id, gen)
            return ctx.bits
        bits = (
            starting_context.bits
            if isinstance(starting_context, Context)
            else int(starting_context)
        )
        if not verifier.is_matching(bits, record_id):
            raise SamplingError(
                f"starting context {bits:#x} is not a matching context for "
                f"record {record_id}; graph samplers must start from a valid "
                "context (Section 5.2)"
            )
        return bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (
            f"budget={self.accountant.budget:g}, spent={self.spent:g}"
            if self.accountant is not None
            else "unbudgeted"
        )
        return (
            f"ReleaseEngine(n={len(self.dataset)}, {budget}, "
            f"verifiers={len(self._verifiers)}, "
            f"releases={self.releases_completed})"
        )
